// Scalar (baseline-ISA) kernel implementations — the semantic reference
// every SIMD level must reproduce bit-for-bit.
//
// The accumulation contract (see simd/dispatch.h): eight-lane reduction
// shape, fused multiply-add per partial product, fixed combine tree, serial
// fma tail; element-wise and GEMM accumulation chains use fma per element
// in a defined order. std::fma is the IEEE-754 fusedMultiplyAdd — correctly
// rounded on every platform — so this TU computes exactly what the vfmadd
// lanes of the AVX2/AVX-512 TUs compute, even when the baseline ISA has no
// fma instruction and libm provides it in software. That makes this level a
// *correctness* fallback (pre-2013 x86, exotic targets), not a fast path:
// on FMA-capable hardware the dispatcher never picks it unless forced, and
// the bench records its honest (slower) throughput per level.

#include <cmath>
#include <cstddef>

#include "linalg/kernels.h"
#include "linalg/simd/dispatch.h"

namespace sepriv::simd {
namespace {

double DotScalar(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  double acc4 = 0.0, acc5 = 0.0, acc6 = 0.0, acc7 = 0.0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = std::fma(a[i], b[i], acc0);
    acc1 = std::fma(a[i + 1], b[i + 1], acc1);
    acc2 = std::fma(a[i + 2], b[i + 2], acc2);
    acc3 = std::fma(a[i + 3], b[i + 3], acc3);
    acc4 = std::fma(a[i + 4], b[i + 4], acc4);
    acc5 = std::fma(a[i + 5], b[i + 5], acc5);
    acc6 = std::fma(a[i + 6], b[i + 6], acc6);
    acc7 = std::fma(a[i + 7], b[i + 7], acc7);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], b[i], tail);
  const double l0 = acc0 + acc4;
  const double l1 = acc1 + acc5;
  const double l2 = acc2 + acc6;
  const double l3 = acc3 + acc7;
  return ((l0 + l2) + (l1 + l3)) + tail;
}

double SquaredNormScalar(const double* a, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  double acc4 = 0.0, acc5 = 0.0, acc6 = 0.0, acc7 = 0.0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = std::fma(a[i], a[i], acc0);
    acc1 = std::fma(a[i + 1], a[i + 1], acc1);
    acc2 = std::fma(a[i + 2], a[i + 2], acc2);
    acc3 = std::fma(a[i + 3], a[i + 3], acc3);
    acc4 = std::fma(a[i + 4], a[i + 4], acc4);
    acc5 = std::fma(a[i + 5], a[i + 5], acc5);
    acc6 = std::fma(a[i + 6], a[i + 6], acc6);
    acc7 = std::fma(a[i + 7], a[i + 7], acc7);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], a[i], tail);
  const double l0 = acc0 + acc4;
  const double l1 = acc1 + acc5;
  const double l2 = acc2 + acc6;
  const double l3 = acc3 + acc7;
  return ((l0 + l2) + (l1 + l3)) + tail;
}

double SquaredDistanceScalar(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  double acc4 = 0.0, acc5 = 0.0, acc6 = 0.0, acc7 = 0.0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    const double d4 = a[i + 4] - b[i + 4];
    const double d5 = a[i + 5] - b[i + 5];
    const double d6 = a[i + 6] - b[i + 6];
    const double d7 = a[i + 7] - b[i + 7];
    acc0 = std::fma(d0, d0, acc0);
    acc1 = std::fma(d1, d1, acc1);
    acc2 = std::fma(d2, d2, acc2);
    acc3 = std::fma(d3, d3, acc3);
    acc4 = std::fma(d4, d4, acc4);
    acc5 = std::fma(d5, d5, acc5);
    acc6 = std::fma(d6, d6, acc6);
    acc7 = std::fma(d7, d7, acc7);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail = std::fma(d, d, tail);
  }
  const double l0 = acc0 + acc4;
  const double l1 = acc1 + acc5;
  const double l2 = acc2 + acc6;
  const double l3 = acc3 + acc7;
  return ((l0 + l2) + (l1 + l3)) + tail;
}

void AxpyScalar(double alpha, const double* SEPRIV_SIMD_RESTRICT x,
                double* SEPRIV_SIMD_RESTRICT y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void ScaleScalar(double alpha, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ScaleStoreScalar(double alpha, const double* SEPRIV_SIMD_RESTRICT x,
                      double* SEPRIV_SIMD_RESTRICT y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i];
}

double SgnsAccumulateScalar(const double* vi, const double* vn, size_t dim,
                            double weight, double indicator,
                            double* center_grad, double* ctx_row) {
  const double x = DotScalar(vi, vn, dim);
  const double coeff = weight * (kernels::Sigmoid(x) - indicator);
  for (size_t d = 0; d < dim; ++d) {
    center_grad[d] = std::fma(coeff, vn[d], center_grad[d]);
    ctx_row[d] = coeff * vi[d];
  }
  return x;
}

// One (i0..i1, j0..j1) output tile of C = A * B, depth blocks ascending,
// 2-row x 4-depth register block, every per-element chain an ascending-k
// fma sequence. This loop *structure* is what the vector tiles widen; the
// per-element arithmetic is identical there.
void GemmTileScalar(const double* a, const double* b, double* c, size_t k,
                    size_t n, size_t i0, size_t i1, size_t j0, size_t j1) {
  const size_t width = j1 - j0;
  for (size_t i = i0; i < i1; ++i) {
    double* crow = c + i * n + j0;
    for (size_t j = 0; j < width; ++j) crow[j] = 0.0;
  }
  for (size_t k0 = 0; k0 < k; k0 += kGemmTileDepth) {
    const size_t k1 = k0 + kGemmTileDepth < k ? k0 + kGemmTileDepth : k;
    size_t i = i0;
    for (; i + 2 <= i1; i += 2) {
      const double* arow0 = a + i * k;
      const double* arow1 = arow0 + k;
      double* crow0 = c + i * n + j0;
      double* crow1 = crow0 + n;
      size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const double a00 = arow0[kk], a01 = arow0[kk + 1];
        const double a02 = arow0[kk + 2], a03 = arow0[kk + 3];
        const double a10 = arow1[kk], a11 = arow1[kk + 1];
        const double a12 = arow1[kk + 2], a13 = arow1[kk + 3];
        const double* b0 = b + kk * n + j0;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        for (size_t j = 0; j < width; ++j) {
          const double bv0 = b0[j], bv1 = b1[j], bv2 = b2[j], bv3 = b3[j];
          double t0 = crow0[j];
          t0 = std::fma(a00, bv0, t0);
          t0 = std::fma(a01, bv1, t0);
          t0 = std::fma(a02, bv2, t0);
          t0 = std::fma(a03, bv3, t0);
          crow0[j] = t0;
          double t1 = crow1[j];
          t1 = std::fma(a10, bv0, t1);
          t1 = std::fma(a11, bv1, t1);
          t1 = std::fma(a12, bv2, t1);
          t1 = std::fma(a13, bv3, t1);
          crow1[j] = t1;
        }
      }
      for (; kk < k1; ++kk) {
        AxpyScalar(arow0[kk], b + kk * n + j0, crow0, width);
        AxpyScalar(arow1[kk], b + kk * n + j0, crow1, width);
      }
    }
    for (; i < i1; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n + j0;
      size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const double a0 = arow[kk], a1 = arow[kk + 1];
        const double a2 = arow[kk + 2], a3 = arow[kk + 3];
        const double* b0 = b + kk * n + j0;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        for (size_t j = 0; j < width; ++j) {
          double t = crow[j];
          t = std::fma(a0, b0[j], t);
          t = std::fma(a1, b1[j], t);
          t = std::fma(a2, b2[j], t);
          t = std::fma(a3, b3[j], t);
          crow[j] = t;
        }
      }
      for (; kk < k1; ++kk) {
        AxpyScalar(arow[kk], b + kk * n + j0, crow, width);
      }
    }
  }
}

// One output tile of C = A * B^T: every element is a contract-shape dot.
void GemmNTTileScalar(const double* a, const double* b, double* c, size_t k,
                      size_t n, size_t i0, size_t i1, size_t j0, size_t j1) {
  for (size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = j0; j < j1; ++j) {
      crow[j] = DotScalar(arow, b + j * k, k);
    }
  }
}

const KernelTable kScalarTable = {
    Level::kScalar,
    "scalar",
    &DotScalar,
    &SquaredNormScalar,
    &SquaredDistanceScalar,
    &AxpyScalar,
    &ScaleScalar,
    &ScaleStoreScalar,
    &SgnsAccumulateScalar,
    &GemmTileScalar,
    &GemmNTTileScalar,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

}  // namespace sepriv::simd
