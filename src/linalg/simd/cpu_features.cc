#include "linalg/simd/cpu_features.h"

#include <cstdio>

#include "linalg/simd/dispatch.h"
#include "util/check.h"
#include "util/env.h"
#include "util/mutex.h"

namespace sepriv::simd {
namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) && defined(__GNUC__)
  // __builtin_cpu_supports reads CPUID once via the compiler's support
  // runtime (initialised before main on glibc); no inline asm needed.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

// Guards the one-time resolution and the SetLevel/ResetLevel overrides.
Mutex& StateMutex() {
  static Mutex mu;
  return mu;
}

const KernelTable* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return ScalarKernels();
    case Level::kAvx2:
      return Avx2Kernels();
    case Level::kAvx512:
      return Avx512Kernels();
  }
  return nullptr;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseLevel(const std::string& name, Level* out) {
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    if (name == LevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool LevelCompiled(Level level) { return TableFor(level) != nullptr; }

bool LevelSupported(Level level) {
  if (!LevelCompiled(level)) return false;
  const CpuFeatures& f = DetectCpuFeatures();
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return f.avx2 && f.fma;
    case Level::kAvx512:
      return f.avx512f;
  }
  return false;
}

Level BestSupportedLevel() {
  for (Level level : {Level::kAvx512, Level::kAvx2}) {
    if (LevelSupported(level)) return level;
  }
  return Level::kScalar;
}

Level ActiveLevel() { return ActiveKernels().level; }

void SetLevel(Level level) {
  SEPRIV_CHECK(LevelSupported(level),
               "SEPRIV_SIMD level '%s' is not supported on this CPU/build",
               LevelName(level));
  MutexLock lock(StateMutex());
  internal::g_active_table.store(TableFor(level), std::memory_order_release);
}

void ResetLevel() {
  MutexLock lock(StateMutex());
  internal::g_active_table.store(nullptr, std::memory_order_release);
}

std::string CpuFeatureString() {
  const CpuFeatures& f = DetectCpuFeatures();
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ' ';
    out += name;
  };
  if (f.avx2) add("avx2");
  if (f.fma) add("fma");
  if (f.avx512f) add("avx512f");
  return out;
}

namespace internal {

std::atomic<const KernelTable*> g_active_table{nullptr};

const KernelTable& ResolveActiveTable() {
  MutexLock lock(StateMutex());
  const KernelTable* t = g_active_table.load(std::memory_order_acquire);
  if (t != nullptr) return *t;  // raced with SetLevel or another resolver

  Level level = BestSupportedLevel();
  const std::string env = GetStringEnv("SEPRIV_SIMD");
  if (!env.empty()) {
    Level parsed;
    if (!ParseLevel(env, &parsed)) {
      std::fprintf(stderr,
                   "[seprivgemb] ignoring unknown SEPRIV_SIMD=%s "
                   "(want scalar|avx2|avx512)\n",
                   env.c_str());
    } else if (!LevelSupported(parsed)) {
      std::fprintf(stderr,
                   "[seprivgemb] SEPRIV_SIMD=%s not supported on this "
                   "CPU/build; using %s\n",
                   env.c_str(), LevelName(level));
    } else {
      level = parsed;
    }
  }
  t = TableFor(level);
  g_active_table.store(t, std::memory_order_release);
  return *t;
}

}  // namespace internal
}  // namespace sepriv::simd
