// AVX2+FMA kernel implementations. This TU is compiled with -mavx2 -mfma
// (see src/CMakeLists.txt) and must therefore contain no code reachable on
// baseline hardware except through the dispatch table, which only offers it
// when CPUID reports avx2+fma.
//
// Bit-identity with the scalar reference (simd/dispatch.h contract): the
// eight scalar accumulators become two __m256d registers — lanes 0..3 and
// 4..7 — fed by _mm256_fmadd_pd (the same correctly-rounded fusedMultiplyAdd
// as std::fma); the combine l_j = acc_j + acc_{j+4} is one 256-bit add, the
// final ((l0+l2)+(l1+l3)) a 128-bit fold. Element-wise kernels and GEMM
// tiles vectorize across *independent* output elements only, so width never
// touches any per-element chain.

#include "linalg/simd/dispatch.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "linalg/kernels.h"

namespace sepriv::simd {
namespace {

// ((l0 + l2) + (l1 + l3)) for l = lanes of a __m256d — the contract's
// combine tree applied to the lane sums.
inline double Combine4(__m256d l) {
  const __m128d lo = _mm256_castpd256_pd128(l);     // l0, l1
  const __m128d hi = _mm256_extractf128_pd(l, 1);   // l2, l3
  const __m128d s = _mm_add_pd(lo, hi);             // l0+l2, l1+l3
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();  // scalar acc0..acc3
  __m256d acc_hi = _mm256_setzero_pd();  // scalar acc4..acc7
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                             _mm256_loadu_pd(b + i + 4), acc_hi);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], b[i], tail);
  return Combine4(_mm256_add_pd(acc_lo, acc_hi)) + tail;
}

double SquaredNormAvx2(const double* a, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v_lo = _mm256_loadu_pd(a + i);
    const __m256d v_hi = _mm256_loadu_pd(a + i + 4);
    acc_lo = _mm256_fmadd_pd(v_lo, v_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(v_hi, v_hi, acc_hi);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], a[i], tail);
  return Combine4(_mm256_add_pd(acc_lo, acc_hi)) + tail;
}

double SquaredDistanceAvx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d_lo =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d_hi =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc_lo = _mm256_fmadd_pd(d_lo, d_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(d_hi, d_hi, acc_hi);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail = std::fma(d, d, tail);
  }
  return Combine4(_mm256_add_pd(acc_lo, acc_hi)) + tail;
}

void AxpyAvx2(double alpha, const double* SEPRIV_SIMD_RESTRICT x,
              double* SEPRIV_SIMD_RESTRICT y, size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i,
        _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4,
                     _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4),
                                     _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i,
        _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void ScaleAvx2(double alpha, double* x, size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void ScaleStoreAvx2(double alpha, const double* SEPRIV_SIMD_RESTRICT x,
                    double* SEPRIV_SIMD_RESTRICT y, size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
}

double SgnsAccumulateAvx2(const double* vi, const double* vn, size_t dim,
                          double weight, double indicator, double* center_grad,
                          double* ctx_row) {
  const double x = DotAvx2(vi, vn, dim);
  const double coeff = weight * (kernels::Sigmoid(x) - indicator);
  const __m256d cv = _mm256_set1_pd(coeff);
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const __m256d vi_v = _mm256_loadu_pd(vi + d);
    const __m256d vn_v = _mm256_loadu_pd(vn + d);
    _mm256_storeu_pd(
        center_grad + d,
        _mm256_fmadd_pd(cv, vn_v, _mm256_loadu_pd(center_grad + d)));
    _mm256_storeu_pd(ctx_row + d, _mm256_mul_pd(cv, vi_v));
  }
  for (; d < dim; ++d) {
    center_grad[d] = std::fma(coeff, vn[d], center_grad[d]);
    ctx_row[d] = coeff * vi[d];
  }
  return x;
}

// The scalar tile's 2-row x 4-depth register block widened across the
// column axis to 2x __m256d (8 columns) per row. Each C(i, j) still
// accumulates its four depth products in ascending-k fma order — columns
// are independent, so the vector width changes no bits.
void GemmTileAvx2(const double* a, const double* b, double* c, size_t k,
                  size_t n, size_t i0, size_t i1, size_t j0, size_t j1) {
  const size_t width = j1 - j0;
  for (size_t i = i0; i < i1; ++i) {
    double* crow = c + i * n + j0;
    for (size_t j = 0; j < width; ++j) crow[j] = 0.0;
  }
  for (size_t k0 = 0; k0 < k; k0 += kGemmTileDepth) {
    const size_t k1 = k0 + kGemmTileDepth < k ? k0 + kGemmTileDepth : k;
    size_t i = i0;
    for (; i + 2 <= i1; i += 2) {
      const double* arow0 = a + i * k;
      const double* arow1 = arow0 + k;
      double* crow0 = c + i * n + j0;
      double* crow1 = crow0 + n;
      size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const __m256d a00 = _mm256_set1_pd(arow0[kk]);
        const __m256d a01 = _mm256_set1_pd(arow0[kk + 1]);
        const __m256d a02 = _mm256_set1_pd(arow0[kk + 2]);
        const __m256d a03 = _mm256_set1_pd(arow0[kk + 3]);
        const __m256d a10 = _mm256_set1_pd(arow1[kk]);
        const __m256d a11 = _mm256_set1_pd(arow1[kk + 1]);
        const __m256d a12 = _mm256_set1_pd(arow1[kk + 2]);
        const __m256d a13 = _mm256_set1_pd(arow1[kk + 3]);
        const double* b0 = b + kk * n + j0;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        size_t j = 0;
        for (; j + 8 <= width; j += 8) {
          const __m256d bv0a = _mm256_loadu_pd(b0 + j);
          const __m256d bv1a = _mm256_loadu_pd(b1 + j);
          const __m256d bv2a = _mm256_loadu_pd(b2 + j);
          const __m256d bv3a = _mm256_loadu_pd(b3 + j);
          const __m256d bv0b = _mm256_loadu_pd(b0 + j + 4);
          const __m256d bv1b = _mm256_loadu_pd(b1 + j + 4);
          const __m256d bv2b = _mm256_loadu_pd(b2 + j + 4);
          const __m256d bv3b = _mm256_loadu_pd(b3 + j + 4);
          __m256d t0a = _mm256_loadu_pd(crow0 + j);
          __m256d t0b = _mm256_loadu_pd(crow0 + j + 4);
          t0a = _mm256_fmadd_pd(a00, bv0a, t0a);
          t0b = _mm256_fmadd_pd(a00, bv0b, t0b);
          t0a = _mm256_fmadd_pd(a01, bv1a, t0a);
          t0b = _mm256_fmadd_pd(a01, bv1b, t0b);
          t0a = _mm256_fmadd_pd(a02, bv2a, t0a);
          t0b = _mm256_fmadd_pd(a02, bv2b, t0b);
          t0a = _mm256_fmadd_pd(a03, bv3a, t0a);
          t0b = _mm256_fmadd_pd(a03, bv3b, t0b);
          _mm256_storeu_pd(crow0 + j, t0a);
          _mm256_storeu_pd(crow0 + j + 4, t0b);
          __m256d t1a = _mm256_loadu_pd(crow1 + j);
          __m256d t1b = _mm256_loadu_pd(crow1 + j + 4);
          t1a = _mm256_fmadd_pd(a10, bv0a, t1a);
          t1b = _mm256_fmadd_pd(a10, bv0b, t1b);
          t1a = _mm256_fmadd_pd(a11, bv1a, t1a);
          t1b = _mm256_fmadd_pd(a11, bv1b, t1b);
          t1a = _mm256_fmadd_pd(a12, bv2a, t1a);
          t1b = _mm256_fmadd_pd(a12, bv2b, t1b);
          t1a = _mm256_fmadd_pd(a13, bv3a, t1a);
          t1b = _mm256_fmadd_pd(a13, bv3b, t1b);
          _mm256_storeu_pd(crow1 + j, t1a);
          _mm256_storeu_pd(crow1 + j + 4, t1b);
        }
        for (; j < width; ++j) {
          const double bv0 = b0[j], bv1 = b1[j], bv2 = b2[j], bv3 = b3[j];
          double t0 = crow0[j];
          t0 = std::fma(arow0[kk], bv0, t0);
          t0 = std::fma(arow0[kk + 1], bv1, t0);
          t0 = std::fma(arow0[kk + 2], bv2, t0);
          t0 = std::fma(arow0[kk + 3], bv3, t0);
          crow0[j] = t0;
          double t1 = crow1[j];
          t1 = std::fma(arow1[kk], bv0, t1);
          t1 = std::fma(arow1[kk + 1], bv1, t1);
          t1 = std::fma(arow1[kk + 2], bv2, t1);
          t1 = std::fma(arow1[kk + 3], bv3, t1);
          crow1[j] = t1;
        }
      }
      for (; kk < k1; ++kk) {
        AxpyAvx2(arow0[kk], b + kk * n + j0, crow0, width);
        AxpyAvx2(arow1[kk], b + kk * n + j0, crow1, width);
      }
    }
    for (; i < i1; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n + j0;
      size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const __m256d a0 = _mm256_set1_pd(arow[kk]);
        const __m256d a1 = _mm256_set1_pd(arow[kk + 1]);
        const __m256d a2 = _mm256_set1_pd(arow[kk + 2]);
        const __m256d a3 = _mm256_set1_pd(arow[kk + 3]);
        const double* b0 = b + kk * n + j0;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        size_t j = 0;
        for (; j + 4 <= width; j += 4) {
          __m256d t = _mm256_loadu_pd(crow + j);
          t = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + j), t);
          t = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + j), t);
          t = _mm256_fmadd_pd(a2, _mm256_loadu_pd(b2 + j), t);
          t = _mm256_fmadd_pd(a3, _mm256_loadu_pd(b3 + j), t);
          _mm256_storeu_pd(crow + j, t);
        }
        for (; j < width; ++j) {
          double t = crow[j];
          t = std::fma(arow[kk], b0[j], t);
          t = std::fma(arow[kk + 1], b1[j], t);
          t = std::fma(arow[kk + 2], b2[j], t);
          t = std::fma(arow[kk + 3], b3[j], t);
          crow[j] = t;
        }
      }
      for (; kk < k1; ++kk) {
        AxpyAvx2(arow[kk], b + kk * n + j0, crow, width);
      }
    }
  }
}

void GemmNTTileAvx2(const double* a, const double* b, double* c, size_t k,
                    size_t n, size_t i0, size_t i1, size_t j0, size_t j1) {
  for (size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = j0; j < j1; ++j) {
      crow[j] = DotAvx2(arow, b + j * k, k);
    }
  }
}

const KernelTable kAvx2Table = {
    Level::kAvx2,
    "avx2",
    &DotAvx2,
    &SquaredNormAvx2,
    &SquaredDistanceAvx2,
    &AxpyAvx2,
    &ScaleAvx2,
    &ScaleStoreAvx2,
    &SgnsAccumulateAvx2,
    &GemmTileAvx2,
    &GemmNTTileAvx2,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace sepriv::simd

#else  // !(__AVX2__ && __FMA__)

namespace sepriv::simd {

// Built without the required ISA flags (non-x86 target or unsupported
// compiler): the level does not exist and the dispatcher never offers it.
const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace sepriv::simd

#endif
