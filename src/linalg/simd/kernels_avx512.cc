// AVX-512F kernel implementations. Compiled with -mavx512f (plus avx2/fma
// for the 256-bit combine and tails); reachable only through the dispatch
// table when CPUID reports avx512f.
//
// Bit-identity with the scalar reference (simd/dispatch.h contract): the
// eight scalar accumulators are ONE __m512d — lane j holds acc_j — fed by
// _mm512_fmadd_pd; the combine l_j = acc_j + acc_{j+4} is the 256-bit add
// of the register's two halves, then the same 128-bit fold as AVX2. GEMM
// tiles widen the column axis to 2x __m512d (16 columns) per row; depth
// chains stay ascending-k fma per element.

#include "linalg/simd/dispatch.h"

#if defined(__AVX512F__)

// gcc 12 (PR 105593) flags the _mm512_undefined_pd() self-initialisation
// inside the AVX-512 headers under -Werror whenever such an intrinsic is
// inlined into caller code; TU-wide suppression is the upstream-recommended
// workaround until 12.3.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "linalg/kernels.h"

namespace sepriv::simd {
namespace {

// l_j = acc_j + acc_{j+4} (halves add), then ((l0+l2)+(l1+l3)).
inline double Combine8(__m512d acc) {
  const __m256d lo = _mm512_castpd512_pd256(acc);  // acc0..acc3
  // Upper half via shuffle+cast: _mm512_extractf64x4_pd trips gcc 12's
  // -Wuninitialized on the _mm256_undefined_pd() inside the header.
  const __m256d hi = _mm512_castpd512_pd256(
      _mm512_shuffle_f64x2(acc, acc, 0xEE));  // acc4..acc7
  const __m256d l = _mm256_add_pd(lo, hi);             // l0..l3
  const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(l),
                               _mm256_extractf128_pd(l, 1));  // l0+l2, l1+l3
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

double DotAvx512(const double* a, const double* b, size_t n) {
  __m512d acc = _mm512_setzero_pd();  // lane j = scalar acc_j
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), acc);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], b[i], tail);
  return Combine8(acc) + tail;
}

double SquaredNormAvx512(const double* a, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(a + i);
    acc = _mm512_fmadd_pd(v, v, acc);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail = std::fma(a[i], a[i], tail);
  return Combine8(acc) + tail;
}

double SquaredDistanceAvx512(const double* a, const double* b, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    acc = _mm512_fmadd_pd(d, d, acc);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail = std::fma(d, d, tail);
  }
  return Combine8(acc) + tail;
}

void AxpyAvx512(double alpha, const double* SEPRIV_SIMD_RESTRICT x,
                double* SEPRIV_SIMD_RESTRICT y, size_t n) {
  const __m512d av = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(
        y + i,
        _mm512_fmadd_pd(av, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
    _mm512_storeu_pd(y + i + 8,
                     _mm512_fmadd_pd(av, _mm512_loadu_pd(x + i + 8),
                                     _mm512_loadu_pd(y + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i,
        _mm512_fmadd_pd(av, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void ScaleAvx512(double alpha, double* x, size_t n) {
  const __m512d av = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(av, _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void ScaleStoreAvx512(double alpha, const double* SEPRIV_SIMD_RESTRICT x,
                      double* SEPRIV_SIMD_RESTRICT y, size_t n) {
  const __m512d av = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(y + i, _mm512_mul_pd(av, _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
}

double SgnsAccumulateAvx512(const double* vi, const double* vn, size_t dim,
                            double weight, double indicator,
                            double* center_grad, double* ctx_row) {
  const double x = DotAvx512(vi, vn, dim);
  const double coeff = weight * (kernels::Sigmoid(x) - indicator);
  const __m512d cv = _mm512_set1_pd(coeff);
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m512d vi_v = _mm512_loadu_pd(vi + d);
    const __m512d vn_v = _mm512_loadu_pd(vn + d);
    _mm512_storeu_pd(
        center_grad + d,
        _mm512_fmadd_pd(cv, vn_v, _mm512_loadu_pd(center_grad + d)));
    _mm512_storeu_pd(ctx_row + d, _mm512_mul_pd(cv, vi_v));
  }
  for (; d < dim; ++d) {
    center_grad[d] = std::fma(coeff, vn[d], center_grad[d]);
    ctx_row[d] = coeff * vi[d];
  }
  return x;
}

// 2-row x 2x __m512d (16-column) register block; ascending-k fma chains.
void GemmTileAvx512(const double* a, const double* b, double* c, size_t k,
                    size_t n, size_t i0, size_t i1, size_t j0, size_t j1) {
  const size_t width = j1 - j0;
  for (size_t i = i0; i < i1; ++i) {
    double* crow = c + i * n + j0;
    for (size_t j = 0; j < width; ++j) crow[j] = 0.0;
  }
  for (size_t k0 = 0; k0 < k; k0 += kGemmTileDepth) {
    const size_t k1 = k0 + kGemmTileDepth < k ? k0 + kGemmTileDepth : k;
    size_t i = i0;
    for (; i + 2 <= i1; i += 2) {
      const double* arow0 = a + i * k;
      const double* arow1 = arow0 + k;
      double* crow0 = c + i * n + j0;
      double* crow1 = crow0 + n;
      size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const __m512d a00 = _mm512_set1_pd(arow0[kk]);
        const __m512d a01 = _mm512_set1_pd(arow0[kk + 1]);
        const __m512d a02 = _mm512_set1_pd(arow0[kk + 2]);
        const __m512d a03 = _mm512_set1_pd(arow0[kk + 3]);
        const __m512d a10 = _mm512_set1_pd(arow1[kk]);
        const __m512d a11 = _mm512_set1_pd(arow1[kk + 1]);
        const __m512d a12 = _mm512_set1_pd(arow1[kk + 2]);
        const __m512d a13 = _mm512_set1_pd(arow1[kk + 3]);
        const double* b0 = b + kk * n + j0;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        size_t j = 0;
        for (; j + 16 <= width; j += 16) {
          const __m512d bv0a = _mm512_loadu_pd(b0 + j);
          const __m512d bv1a = _mm512_loadu_pd(b1 + j);
          const __m512d bv2a = _mm512_loadu_pd(b2 + j);
          const __m512d bv3a = _mm512_loadu_pd(b3 + j);
          const __m512d bv0b = _mm512_loadu_pd(b0 + j + 8);
          const __m512d bv1b = _mm512_loadu_pd(b1 + j + 8);
          const __m512d bv2b = _mm512_loadu_pd(b2 + j + 8);
          const __m512d bv3b = _mm512_loadu_pd(b3 + j + 8);
          __m512d t0a = _mm512_loadu_pd(crow0 + j);
          __m512d t0b = _mm512_loadu_pd(crow0 + j + 8);
          t0a = _mm512_fmadd_pd(a00, bv0a, t0a);
          t0b = _mm512_fmadd_pd(a00, bv0b, t0b);
          t0a = _mm512_fmadd_pd(a01, bv1a, t0a);
          t0b = _mm512_fmadd_pd(a01, bv1b, t0b);
          t0a = _mm512_fmadd_pd(a02, bv2a, t0a);
          t0b = _mm512_fmadd_pd(a02, bv2b, t0b);
          t0a = _mm512_fmadd_pd(a03, bv3a, t0a);
          t0b = _mm512_fmadd_pd(a03, bv3b, t0b);
          _mm512_storeu_pd(crow0 + j, t0a);
          _mm512_storeu_pd(crow0 + j + 8, t0b);
          __m512d t1a = _mm512_loadu_pd(crow1 + j);
          __m512d t1b = _mm512_loadu_pd(crow1 + j + 8);
          t1a = _mm512_fmadd_pd(a10, bv0a, t1a);
          t1b = _mm512_fmadd_pd(a10, bv0b, t1b);
          t1a = _mm512_fmadd_pd(a11, bv1a, t1a);
          t1b = _mm512_fmadd_pd(a11, bv1b, t1b);
          t1a = _mm512_fmadd_pd(a12, bv2a, t1a);
          t1b = _mm512_fmadd_pd(a12, bv2b, t1b);
          t1a = _mm512_fmadd_pd(a13, bv3a, t1a);
          t1b = _mm512_fmadd_pd(a13, bv3b, t1b);
          _mm512_storeu_pd(crow1 + j, t1a);
          _mm512_storeu_pd(crow1 + j + 8, t1b);
        }
        for (; j + 8 <= width; j += 8) {
          const __m512d bv0 = _mm512_loadu_pd(b0 + j);
          const __m512d bv1 = _mm512_loadu_pd(b1 + j);
          const __m512d bv2 = _mm512_loadu_pd(b2 + j);
          const __m512d bv3 = _mm512_loadu_pd(b3 + j);
          __m512d t0 = _mm512_loadu_pd(crow0 + j);
          t0 = _mm512_fmadd_pd(a00, bv0, t0);
          t0 = _mm512_fmadd_pd(a01, bv1, t0);
          t0 = _mm512_fmadd_pd(a02, bv2, t0);
          t0 = _mm512_fmadd_pd(a03, bv3, t0);
          _mm512_storeu_pd(crow0 + j, t0);
          __m512d t1 = _mm512_loadu_pd(crow1 + j);
          t1 = _mm512_fmadd_pd(a10, bv0, t1);
          t1 = _mm512_fmadd_pd(a11, bv1, t1);
          t1 = _mm512_fmadd_pd(a12, bv2, t1);
          t1 = _mm512_fmadd_pd(a13, bv3, t1);
          _mm512_storeu_pd(crow1 + j, t1);
        }
        for (; j < width; ++j) {
          const double bv0 = b0[j], bv1 = b1[j], bv2 = b2[j], bv3 = b3[j];
          double t0 = crow0[j];
          t0 = std::fma(arow0[kk], bv0, t0);
          t0 = std::fma(arow0[kk + 1], bv1, t0);
          t0 = std::fma(arow0[kk + 2], bv2, t0);
          t0 = std::fma(arow0[kk + 3], bv3, t0);
          crow0[j] = t0;
          double t1 = crow1[j];
          t1 = std::fma(arow1[kk], bv0, t1);
          t1 = std::fma(arow1[kk + 1], bv1, t1);
          t1 = std::fma(arow1[kk + 2], bv2, t1);
          t1 = std::fma(arow1[kk + 3], bv3, t1);
          crow1[j] = t1;
        }
      }
      for (; kk < k1; ++kk) {
        AxpyAvx512(arow0[kk], b + kk * n + j0, crow0, width);
        AxpyAvx512(arow1[kk], b + kk * n + j0, crow1, width);
      }
    }
    for (; i < i1; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n + j0;
      size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const __m512d a0 = _mm512_set1_pd(arow[kk]);
        const __m512d a1 = _mm512_set1_pd(arow[kk + 1]);
        const __m512d a2 = _mm512_set1_pd(arow[kk + 2]);
        const __m512d a3 = _mm512_set1_pd(arow[kk + 3]);
        const double* b0 = b + kk * n + j0;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        size_t j = 0;
        for (; j + 8 <= width; j += 8) {
          __m512d t = _mm512_loadu_pd(crow + j);
          t = _mm512_fmadd_pd(a0, _mm512_loadu_pd(b0 + j), t);
          t = _mm512_fmadd_pd(a1, _mm512_loadu_pd(b1 + j), t);
          t = _mm512_fmadd_pd(a2, _mm512_loadu_pd(b2 + j), t);
          t = _mm512_fmadd_pd(a3, _mm512_loadu_pd(b3 + j), t);
          _mm512_storeu_pd(crow + j, t);
        }
        for (; j < width; ++j) {
          double t = crow[j];
          t = std::fma(arow[kk], b0[j], t);
          t = std::fma(arow[kk + 1], b1[j], t);
          t = std::fma(arow[kk + 2], b2[j], t);
          t = std::fma(arow[kk + 3], b3[j], t);
          crow[j] = t;
        }
      }
      for (; kk < k1; ++kk) {
        AxpyAvx512(arow[kk], b + kk * n + j0, crow, width);
      }
    }
  }
}

void GemmNTTileAvx512(const double* a, const double* b, double* c, size_t k,
                      size_t n, size_t i0, size_t i1, size_t j0, size_t j1) {
  for (size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = j0; j < j1; ++j) {
      crow[j] = DotAvx512(arow, b + j * k, k);
    }
  }
}

const KernelTable kAvx512Table = {
    Level::kAvx512,
    "avx512",
    &DotAvx512,
    &SquaredNormAvx512,
    &SquaredDistanceAvx512,
    &AxpyAvx512,
    &ScaleAvx512,
    &ScaleStoreAvx512,
    &SgnsAccumulateAvx512,
    &GemmTileAvx512,
    &GemmNTTileAvx512,
};

}  // namespace

const KernelTable* Avx512Kernels() { return &kAvx512Table; }

}  // namespace sepriv::simd

#else  // !__AVX512F__

namespace sepriv::simd {

const KernelTable* Avx512Kernels() { return nullptr; }

}  // namespace sepriv::simd

#endif
