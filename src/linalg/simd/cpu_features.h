// Runtime CPU-feature detection and SIMD dispatch-level selection.
//
// The linalg kernels (linalg/kernels.h) are compiled three times — portable
// scalar, AVX2+FMA, and AVX-512F — each in its own translation unit with
// per-file ISA flags (see src/CMakeLists.txt), and the binary picks one
// implementation table at runtime from CPUID. This header is the policy
// half: which levels were compiled in, which the CPU supports, and which
// one is active. The mechanism half (the function-pointer table the
// kernels.h wrappers call through) lives in simd/dispatch.h.
//
// Level selection, first use of any kernel:
//   1. a prior simd::SetLevel() call wins (tests/bench forcing a level);
//   2. else the SEPRIV_SIMD environment variable (scalar|avx2|avx512),
//      read through util/env.h — an unsupported or unknown value warns on
//      stderr and falls through;
//   3. else the best level both compiled in and reported by CPUID.
//
// Every level produces BIT-IDENTICAL kernel outputs (see README
// "Performance": the accumulation-order contract), so the knob changes
// wall-clock only — like SEPRIV_NUM_THREADS, never results.

#ifndef SEPRIVGEMB_LINALG_SIMD_CPU_FEATURES_H_
#define SEPRIVGEMB_LINALG_SIMD_CPU_FEATURES_H_

#include <string>

namespace sepriv::simd {

/// The CPUID bits the dispatcher consults, detected once per process.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Detected features of the running CPU (cached after the first call).
const CpuFeatures& DetectCpuFeatures();

/// Dispatch levels, ordered: a higher level strictly implies the lower
/// ones' ISA. kScalar is always available and is the semantic reference.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lower-case name ("scalar", "avx2", "avx512") — the SEPRIV_SIMD
/// vocabulary and the bench record suffix.
const char* LevelName(Level level);

/// Parses a LevelName string (exact match). Returns false on anything else.
bool ParseLevel(const std::string& name, Level* out);

/// True when the implementation TU for `level` was compiled with the
/// required ISA flags (always true for kScalar; false e.g. on a non-x86
/// build of the AVX TUs).
bool LevelCompiled(Level level);

/// LevelCompiled AND the running CPU reports the required features.
bool LevelSupported(Level level);

/// The highest supported level — the auto-dispatch choice.
Level BestSupportedLevel();

/// The level the kernels currently dispatch to (resolves on first call;
/// see the selection order above).
Level ActiveLevel();

/// Forces the dispatch level for subsequent kernel calls. SEPRIV_CHECKs
/// that the level is supported; results never depend on this knob (only
/// wall-clock does). Like kernels::SetLinalgThreads, not safe to call
/// concurrently with in-flight kernels — it is a test/bench forcing knob,
/// not a hot-path switch.
void SetLevel(Level level);

/// Drops any forced level and re-resolves from SEPRIV_SIMD / CPUID on the
/// next kernel call. Test isolation helper.
void ResetLevel();

/// Space-separated feature summary ("avx2 fma avx512f", possibly empty) for
/// bench metadata.
std::string CpuFeatureString();

}  // namespace sepriv::simd

#endif  // SEPRIVGEMB_LINALG_SIMD_CPU_FEATURES_H_
