// Dense row-major matrix of doubles.
//
// This is the storage type for skip-gram embedding matrices (Win/Wout),
// neural-network weights, and small dense proximity matrices. Storage stays
// deliberately simple (contiguous, no expression templates); every FLOP is
// delegated to the vectorized kernel layer in linalg/kernels.h, so all
// row/matrix operations share one accumulation shape and the GEMMs are
// cache-blocked and thread-pool parallel with bit-identical output for
// every thread count.

#ifndef SEPRIVGEMB_LINALG_MATRIX_H_
#define SEPRIVGEMB_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace sepriv {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Mutable view of row i.
  std::span<double> Row(size_t i) { return {data_.data() + i * cols_, cols_}; }
  std::span<const double> Row(size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  void Fill(double value) { data_.assign(data_.size(), value); }
  void SetZero() { Fill(0.0); }

  /// Fills with i.i.d. N(mean, stddev^2) entries.
  void FillGaussian(Rng& rng, double mean = 0.0, double stddev = 1.0);

  /// Fills with U[lo, hi) entries.
  void FillUniform(Rng& rng, double lo, double hi);

  /// Xavier/Glorot uniform initialisation: U[-a, a], a = sqrt(6/(fan_in+fan_out)).
  void FillXavier(Rng& rng);

  /// In-place: this += alpha * other. Shapes must match.
  void Axpy(double alpha, const Matrix& other);

  /// In-place scalar multiply.
  void Scale(double alpha);

  /// Rounds every entry to its nearest float32 value (kept widened as
  /// double). The reduced-precision embedding-storage mode applies this at
  /// every epoch boundary so the training weights are always exactly
  /// float32-representable — a Float32Matrix copy or checkpoint payload is
  /// then lossless and resume stays bit-identical. Deterministic (IEEE
  /// round-to-nearest-even per element); on noised weights this is DP
  /// post-processing.
  void RoundToFloat32();

  /// Euclidean norm of row i.
  double RowNorm(size_t i) const;

  /// Frobenius norm of the whole matrix.
  double FrobeniusNorm() const;

  /// Dot product of row i of this with row j of other (equal col counts).
  double RowDot(size_t i, const Matrix& other, size_t j) const;

  /// Squared Euclidean distance between row i of this and row j of other.
  double RowSquaredDistance(size_t i, const Matrix& other, size_t j) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Runtime half of the privacy-flow contract (util/privacy_annotations.h):
  /// the DP mechanism layer marks a matrix sanitized when it injects noise,
  /// and SEPRIV_DCHECK_SANITIZED asserts the bit at publication boundaries.
  /// The bit survives copies/moves (post-processing preserves DP) but is
  /// deliberately NOT cleared by further writes — it certifies that noise
  /// was applied somewhere in the matrix's history, not freshness.
  void MarkDpSanitized() { dp_sanitized_ = true; }
  bool dp_sanitized() const { return dp_sanitized_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  bool dp_sanitized_ = false;
  std::vector<double> data_;
};

/// Dense row-major matrix of float32 — the reduced-precision storage for
/// embedding tables (half the resident bytes of Matrix). A read-side type:
/// training updates stay in the double pipeline (with per-epoch float32
/// rounding under EmbeddingStorage::kFloat32, which makes the narrowing
/// here lossless); serving/eval callers widen rows back to double on
/// access. Carries the dp_sanitized bit across the conversion.
class Float32Matrix {
 public:
  Float32Matrix() = default;

  /// rows x cols, zero-initialised.
  Float32Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Narrowing copy: each entry rounds to its nearest float32 (exact when
  /// `m` was rounded through Matrix::RoundToFloat32).
  explicit Float32Matrix(const Matrix& m);

  /// Exact widening back to the double storage type.
  Matrix ToMatrix() const;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  float operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<const float> Row(size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  /// Widens row i into out[0..cols) (exact: float -> double).
  void DecodeRow(size_t i, double* out) const;

  /// Heap bytes of the table payload (the RSS the storage mode saves).
  size_t MemoryBytes() const { return data_.size() * sizeof(float); }

  void MarkDpSanitized() { dp_sanitized_ = true; }
  bool dp_sanitized() const { return dp_sanitized_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  bool dp_sanitized_ = false;
  std::vector<float> data_;
};

/// C = A * B (cache-blocked, parallel for large shapes; thread-invariant).
/// Dense inner loops — no per-element zero skipping; sparse operands belong
/// in a sparse-aware structure (see NormalizedAdjacency), not here.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix MatTMul(const Matrix& a, const Matrix& b);

/// C = A * B^T.
Matrix MatMulT(const Matrix& a, const Matrix& b);

/// Transposed copy.
Matrix Transpose(const Matrix& a);

/// Elementwise sum / difference (shape-checked).
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);

/// Elementwise (Hadamard) product.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Max absolute elementwise difference; used by gradient-check tests.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace sepriv

#endif  // SEPRIVGEMB_LINALG_MATRIX_H_
