#include "linalg/kernels.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "linalg/simd/dispatch.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sepriv::kernels {
namespace {

// --- Bulk Gaussian -----------------------------------------------------------

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Draws one Box–Muller pair (cos, sin) from rng. Matches the uniform
// consumption of Rng::Normal exactly: reject u1 == 0, then one u2 draw.
inline void BoxMullerPair(Rng& rng, double& c, double& s) {
  double u1 = rng.Uniform();
  while (u1 <= 0.0) u1 = rng.Uniform();
  const double u2 = rng.Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = kTwoPi * u2;
  c = radius * std::cos(theta);
  s = radius * std::sin(theta);
}

// --- GEMM blocking -----------------------------------------------------------

// Output tile: kTileRows x kTileCols doubles of C (128 KiB) plus the
// streamed B panel (kGemmTileDepth x kTileCols = 256 KiB) fit in L2; the A
// strip (kTileRows x kGemmTileDepth) re-used across the j loop sits in L1.
// The in-tile micro-kernels live in linalg/simd/kernels_*.cc (per dispatch
// level); the depth block size is part of the shared accumulation contract
// (simd::kGemmTileDepth).
constexpr size_t kTileRows = 64;
constexpr size_t kTileCols = 256;

// Below this many multiply-adds a parallel dispatch costs more than it saves;
// the serial path walks the identical tile loops, so results cannot differ.
constexpr size_t kParallelFlopFloor = size_t{1} << 18;

size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

// --- Shared pool -------------------------------------------------------------

struct LinalgPool {
  Mutex mu;  // serializes pool use and resizing
  // Built lazily at the resolved size; guarded so -Wthread-safety proves
  // the lazy init is raced by nobody (the init was a TSan/TSA blind spot
  // before the annotation pass).
  std::unique_ptr<ThreadPool> pool SEPRIV_GUARDED_BY(mu);
  size_t requested SEPRIV_GUARDED_BY(mu) = 0;  // 0 = auto policy
  // Thread count published for lock-free reads: LinalgThreads() must be
  // callable from inside a running task, where mu is held by the
  // dispatching thread for the whole ParallelFor. Set whenever the pool is
  // (re)built or an explicit request arrives; 0 = not resolved yet.
  std::atomic<size_t> resolved{0};
};

LinalgPool& PoolState() {
  // Function-local static: built on first parallel kernel, workers joined by
  // the ThreadPool destructor at exit (keeps LeakSanitizer clean).
  static LinalgPool state;
  return state;
}

size_t ResolveAuto() {
  // Same knob the trainer honours (core/config.cc): explicit request wins,
  // then SEPRIV_NUM_THREADS, then the hardware.
  constexpr size_t kMaxThreads = 1024;
  const size_t env = ParseSizeEnv("SEPRIV_NUM_THREADS", kMaxThreads, 0,
                                  /*zero_means_fallback=*/true);
  return ThreadPool::ResolveThreads(env);
}

// True while the current thread is executing inside a parallel kernel; any
// nested kernel call then runs serially instead of deadlocking the pool.
thread_local bool tls_in_parallel = false;

}  // namespace

size_t LinalgThreads() {
  LinalgPool& st = PoolState();
  // Lock-free fast path: any pool that could be running tasks right now has
  // already published its size (before its first ParallelFor), so callers
  // inside a task never touch the mutex — no deadlock, no recursive lock.
  const size_t cached = st.resolved.load(std::memory_order_acquire);
  if (cached > 0) return cached;
  MutexLock lock(st.mu);
  if (st.pool) return st.pool->num_threads();
  return st.requested > 0 ? st.requested : ResolveAuto();
}

void SetLinalgThreads(size_t n) {
  LinalgPool& st = PoolState();
  MutexLock lock(st.mu);
  st.requested = n;
  st.pool.reset();  // rebuilt lazily at the new size
  st.resolved.store(n, std::memory_order_release);  // 0 = re-resolve lazily
}

void ParallelTasks(size_t n_tasks, const std::function<void(size_t)>& task) {
  if (n_tasks == 0) return;
  LinalgPool& st = PoolState();
  // Serial fallback: nested call, single task, or pool busy in another
  // thread. Each task owns its outputs, so serial and parallel execution
  // produce bit-identical results.
  if (tls_in_parallel || n_tasks == 1 || !st.mu.TryLock()) {
    for (size_t t = 0; t < n_tasks; ++t) task(t);
    return;
  }
  MutexLock lock(st.mu, kAdoptLock);
  if (!st.pool) {
    const size_t threads = st.requested > 0 ? st.requested : ResolveAuto();
    st.pool = std::make_unique<ThreadPool>(threads);
    st.resolved.store(st.pool->num_threads(), std::memory_order_release);
  }
  if (st.pool->num_threads() == 1) {
    // st.mu is held for this inline loop, so mark the thread as inside a
    // parallel region: a nested ParallelTasks must short-circuit on
    // tls_in_parallel rather than try_lock a mutex this thread already
    // owns (undefined behavior for std::mutex).
    const bool prev = tls_in_parallel;
    tls_in_parallel = true;
    for (size_t t = 0; t < n_tasks; ++t) task(t);
    tls_in_parallel = prev;
    return;
  }
  st.pool->ParallelFor(n_tasks, 1, [&task](size_t begin, size_t end) {
    const bool prev = tls_in_parallel;
    tls_in_parallel = true;
    for (size_t t = begin; t < end; ++t) task(t);
    tls_in_parallel = prev;
  });
}

// --- Bulk Gaussian -----------------------------------------------------------

void FillGaussian(Rng& rng, double* dst, size_t n, double mean,
                  double stddev) {
  size_t i = 0;
  double c, s;
  // Drain a pending cached value and produce any odd tail via Normal() (which
  // caches its sin), so the fill consumes and leaves the engine exactly as
  // the scalar loop would — only the branch-free bulk middle differs.
  if (n > 0 && rng.TakeCachedNormal(c)) dst[i++] = mean + stddev * c;
  for (; i + 2 <= n; i += 2) {
    BoxMullerPair(rng, c, s);
    dst[i] = mean + stddev * c;
    dst[i + 1] = mean + stddev * s;
  }
  if (i < n) dst[i] = rng.Normal(mean, stddev);
}

void AccumulateGaussian(Rng& rng, double* dst, size_t n, double stddev,
                        double scale) {
  const double f = scale * stddev;
  size_t i = 0;
  double c, s;
  if (n > 0 && rng.TakeCachedNormal(c)) dst[i++] += f * c;
  for (; i + 2 <= n; i += 2) {
    BoxMullerPair(rng, c, s);
    dst[i] += f * c;
    dst[i + 1] += f * s;
  }
  if (i < n) dst[i] += f * rng.Normal();
}

// --- GEMM entry points -------------------------------------------------------

void Gemm(const double* a, const double* b, double* c, size_t m, size_t k,
          size_t n) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0);
    return;
  }
  const size_t row_blocks = CeilDiv(m, kTileRows);
  const size_t col_blocks = CeilDiv(n, kTileCols);
  // Resolve the dispatch level once per call, outside the task lambda, so
  // every tile of one GEMM runs the same micro-kernel even if a test thread
  // flips the level mid-flight.
  const simd::KernelTable& kt = simd::ActiveKernels();
  const auto tile = [&, gemm_tile = kt.gemm_tile](size_t t) {
    const size_t ib = t / col_blocks;
    const size_t jb = t % col_blocks;
    const size_t i0 = ib * kTileRows;
    const size_t j0 = jb * kTileCols;
    gemm_tile(a, b, c, k, n, i0, std::min(m, i0 + kTileRows), j0,
              std::min(n, j0 + kTileCols));
  };
  const size_t tiles = row_blocks * col_blocks;
  if (m * n * k < kParallelFlopFloor) {
    for (size_t t = 0; t < tiles; ++t) tile(t);
  } else {
    ParallelTasks(tiles, tile);
  }
}

void GemmTN(const double* a, const double* b, double* c, size_t k, size_t m,
            size_t n) {
  // Transpose A once (O(k·m) moves vs O(k·m·n) FLOPs) so the main loop is
  // the one blocked kernel; keeps exactly one accumulation shape.
  std::vector<double> at(m * k);
  for (size_t r = 0; r < k; ++r) {
    const double* arow = a + r * m;
    for (size_t ccol = 0; ccol < m; ++ccol) at[ccol * k + r] = arow[ccol];
  }
  Gemm(at.data(), b, c, m, k, n);
}

void GemmNT(const double* a, const double* b, double* c, size_t m, size_t k,
            size_t n) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0);
    return;
  }
  const size_t row_blocks = CeilDiv(m, kTileRows);
  const size_t col_blocks = CeilDiv(n, kTileCols);
  const simd::KernelTable& kt = simd::ActiveKernels();
  const auto tile = [&, gemm_nt_tile = kt.gemm_nt_tile](size_t t) {
    const size_t ib = t / col_blocks;
    const size_t jb = t % col_blocks;
    const size_t i0 = ib * kTileRows;
    const size_t j0 = jb * kTileCols;
    gemm_nt_tile(a, b, c, k, n, i0, std::min(m, i0 + kTileRows), j0,
                 std::min(n, j0 + kTileCols));
  };
  const size_t tiles = row_blocks * col_blocks;
  if (m * n * k < kParallelFlopFloor) {
    for (size_t t = 0; t < tiles; ++t) tile(t);
  } else {
    ParallelTasks(tiles, tile);
  }
}

}  // namespace sepriv::kernels
