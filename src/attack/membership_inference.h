// Empirical privacy auditing for published embedding matrices.
//
// The paper's threat model (§III-A) is a white-box attacker holding the
// published {Win, Wout} who wants to infer whether a target edge was in the
// training graph. This module implements three standard attack statistics
// and reports their ROC-AUC over held-in vs held-out edges — an *empirical
// lower bound* on the privacy leakage that complements the analytical
// (ε, δ) guarantee:
//
//  * kScoreThreshold — score the pair with the trained objective
//    σ(v_i·v_j); members should score higher (loss-based MIA).
//  * kRowNormSum     — ||v_i|| + ||v_j||. Under the non-zero perturbation
//    mechanism (Eq. 9), Gaussian noise accumulates ONLY in rows touched by
//    training, so published row norms carry visit-count (≈ degree)
//    signatures. This statistic audits that side channel.
//  * kCosine         — cosine similarity of the two input rows.
//
// An attack AUC of 0.5 means no measurable leakage.

#ifndef SEPRIVGEMB_ATTACK_MEMBERSHIP_INFERENCE_H_
#define SEPRIVGEMB_ATTACK_MEMBERSHIP_INFERENCE_H_

#include <string>
#include <vector>

#include "embedding/skipgram.h"
#include "graph/graph.h"
#include "linalg/matrix.h"

namespace sepriv {

enum class AttackStatistic {
  kScoreThreshold,
  kRowNormSum,
  kCosine,
};

std::string AttackStatisticName(AttackStatistic s);

/// Attack value for one candidate pair.
double AttackScore(const SkipGramModel& model, NodeId u, NodeId v,
                   AttackStatistic statistic);

struct AttackResult {
  AttackStatistic statistic;
  double auc = 0.5;          // distinguishing members from non-members
  size_t member_pairs = 0;
  size_t non_member_pairs = 0;
};

/// Evaluates one statistic: members = edges of `train_graph` (sampled up to
/// `max_pairs`), non-members = uniformly sampled non-edges.
AttackResult RunMembershipInference(const SkipGramModel& model,
                                    const Graph& train_graph,
                                    AttackStatistic statistic,
                                    size_t max_pairs = 2000,
                                    uint64_t seed = 1234);

/// All three statistics at once.
std::vector<AttackResult> AuditEmbedding(const SkipGramModel& model,
                                         const Graph& train_graph,
                                         size_t max_pairs = 2000,
                                         uint64_t seed = 1234);

}  // namespace sepriv

#endif  // SEPRIVGEMB_ATTACK_MEMBERSHIP_INFERENCE_H_
