#include "attack/membership_inference.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace sepriv {

std::string AttackStatisticName(AttackStatistic s) {
  switch (s) {
    case AttackStatistic::kScoreThreshold: return "score_threshold";
    case AttackStatistic::kRowNormSum: return "row_norm_sum";
    case AttackStatistic::kCosine: return "cosine";
  }
  return "unknown";
}

double AttackScore(const SkipGramModel& model, NodeId u, NodeId v,
                   AttackStatistic statistic) {
  switch (statistic) {
    case AttackStatistic::kScoreThreshold:
      // Symmetrised trained objective: members were pushed to score high.
      return Sigmoid(0.5 * (model.Score(u, v) + model.Score(v, u)));
    case AttackStatistic::kRowNormSum:
      return model.w_in.RowNorm(u) + model.w_in.RowNorm(v);
    case AttackStatistic::kCosine: {
      const double nu = model.w_in.RowNorm(u);
      const double nv = model.w_in.RowNorm(v);
      if (nu == 0.0 || nv == 0.0) return 0.0;
      return model.w_in.RowDot(u, model.w_in, v) / (nu * nv);
    }
  }
  return 0.0;
}

AttackResult RunMembershipInference(const SkipGramModel& model,
                                    const Graph& train_graph,
                                    AttackStatistic statistic,
                                    size_t max_pairs, uint64_t seed) {
  SEPRIV_CHECK(train_graph.num_edges() > 0, "empty training graph");
  SEPRIV_CHECK(model.num_nodes() == train_graph.num_nodes(),
               "model/graph node mismatch");
  Rng rng(seed);
  const size_t n = train_graph.num_nodes();
  const size_t pairs = std::min(max_pairs, train_graph.num_edges());

  std::vector<double> member_scores, non_member_scores;
  member_scores.reserve(pairs);
  non_member_scores.reserve(pairs);

  // Members: uniform sample of training edges.
  for (size_t t = 0; t < pairs; ++t) {
    const Edge& e =
        train_graph.Edges()[rng.UniformInt(train_graph.num_edges())];
    member_scores.push_back(AttackScore(model, e.u, e.v, statistic));
  }
  // Non-members: uniform non-edges.
  while (non_member_scores.size() < pairs) {
    const auto u = static_cast<NodeId>(rng.UniformInt(n));
    const auto v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || train_graph.HasEdge(u, v)) continue;
    non_member_scores.push_back(AttackScore(model, u, v, statistic));
  }

  AttackResult result;
  result.statistic = statistic;
  result.member_pairs = member_scores.size();
  result.non_member_pairs = non_member_scores.size();
  result.auc = AucFromScores(member_scores, non_member_scores);
  return result;
}

std::vector<AttackResult> AuditEmbedding(const SkipGramModel& model,
                                         const Graph& train_graph,
                                         size_t max_pairs, uint64_t seed) {
  std::vector<AttackResult> results;
  for (AttackStatistic s :
       {AttackStatistic::kScoreThreshold, AttackStatistic::kRowNormSum,
        AttackStatistic::kCosine}) {
    results.push_back(
        RunMembershipInference(model, train_graph, s, max_pairs, seed));
  }
  return results;
}

}  // namespace sepriv
