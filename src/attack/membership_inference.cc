#include "attack/membership_inference.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "eval/parallel_eval.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace sepriv {

std::string AttackStatisticName(AttackStatistic s) {
  switch (s) {
    case AttackStatistic::kScoreThreshold: return "score_threshold";
    case AttackStatistic::kRowNormSum: return "row_norm_sum";
    case AttackStatistic::kCosine: return "cosine";
  }
  return "unknown";
}

double AttackScore(const SkipGramModel& model, NodeId u, NodeId v,
                   AttackStatistic statistic) {
  switch (statistic) {
    case AttackStatistic::kScoreThreshold:
      // Symmetrised trained objective: members were pushed to score high.
      return Sigmoid(0.5 * (model.Score(u, v) + model.Score(v, u)));
    case AttackStatistic::kRowNormSum:
      return model.w_in.RowNorm(u) + model.w_in.RowNorm(v);
    case AttackStatistic::kCosine: {
      const double nu = model.w_in.RowNorm(u);
      const double nv = model.w_in.RowNorm(v);
      if (nu == 0.0 || nv == 0.0) return 0.0;
      return model.w_in.RowDot(u, model.w_in, v) / (nu * nv);
    }
  }
  return 0.0;
}

AttackResult RunMembershipInference(const SkipGramModel& model,
                                    const Graph& train_graph,
                                    AttackStatistic statistic,
                                    size_t max_pairs, uint64_t seed) {
  SEPRIV_CHECK(train_graph.num_edges() > 0, "empty training graph");
  SEPRIV_CHECK(model.num_nodes() == train_graph.num_nodes(),
               "model/graph node mismatch");
  Rng rng(seed);
  const size_t n = train_graph.num_nodes();
  const size_t pairs = std::min(max_pairs, train_graph.num_edges());

  // Two phases: the candidate pairs are drawn first on the single seeded
  // engine (cheap; the draw order — and therefore the pair set — is exactly
  // what the old fused loop consumed), then the expensive embedding-row
  // scoring fans out over the parallel evaluation layer into per-index
  // slots. Results are bit-identical to the serial path for every thread
  // count.
  std::vector<Edge> members;
  members.reserve(pairs);
  for (size_t t = 0; t < pairs; ++t) {
    members.push_back(
        train_graph.Edges()[rng.UniformInt(train_graph.num_edges())]);
  }
  // Non-members draw WITH replacement (target stays `pairs`, matching the
  // class balance the old loop produced on every graph it terminated on),
  // but the rejection loop is now bounded: the old unbounded `while` spun
  // forever on a complete graph, and arbitrarily long on near-complete
  // ones. The attempt budget is generous enough that ordinary graphs never
  // hit it — their draw stream, pair set, and AUC are unchanged.
  std::vector<Edge> non_members;
  non_members.reserve(pairs);
  size_t attempts = 0;
  const size_t max_attempts = 32 * pairs + 64;
  while (non_members.size() < pairs && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.UniformInt(n));
    const auto v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || train_graph.HasEdge(u, v)) continue;
    non_members.push_back({u, v});
  }
  // Attempt budget spent (extreme density). Fill the remainder by cycling
  // the lexicographically ordered non-edge set — with-replacement
  // semantics, so repeats are legitimate. A complete graph has no non-edge
  // at all: the audit then degenerates cleanly (no non-member class ->
  // AucFromScores returns 0.5) instead of hanging.
  if (non_members.size() < pairs) {
    std::vector<Edge> scan;
    for (NodeId u = 0; u + 1 < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (!train_graph.HasEdge(u, v)) scan.push_back({u, v});
      }
    }
    for (size_t k = 0; !scan.empty() && non_members.size() < pairs; ++k) {
      non_members.push_back(scan[k % scan.size()]);
    }
  }

  const auto score_pairs = [&](const std::vector<Edge>& edges) {
    return eval::ParallelMap(edges.size(), [&](size_t t) {
      return AttackScore(model, edges[t].u, edges[t].v, statistic);
    });
  };
  const std::vector<double> member_scores = score_pairs(members);
  const std::vector<double> non_member_scores = score_pairs(non_members);

  AttackResult result;
  result.statistic = statistic;
  result.member_pairs = member_scores.size();
  result.non_member_pairs = non_member_scores.size();
  result.auc = AucFromScores(member_scores, non_member_scores);
  return result;
}

std::vector<AttackResult> AuditEmbedding(const SkipGramModel& model,
                                         const Graph& train_graph,
                                         size_t max_pairs, uint64_t seed) {
  std::vector<AttackResult> results;
  for (AttackStatistic s :
       {AttackStatistic::kScoreThreshold, AttackStatistic::kRowNormSum,
        AttackStatistic::kCosine}) {
    results.push_back(
        RunMembershipInference(model, train_graph, s, max_pairs, seed));
  }
  return results;
}

}  // namespace sepriv
