// Deterministic concurrent experiment runner.
//
// The bench family's paper-table sweeps execute a grid of INDEPENDENT run
// cells — (config mutation, seed, dataset) triples whose bodies train a
// model and evaluate a metric. Run one after another, the wall clock is the
// SUM of every cell; this runner schedules the cells as coarse tasks over
// the shared thread pool (kernels::ParallelTasks), turning the grid into
// "slowest cell ÷ cores" while keeping the RESULTS bit-identical to the
// serial order for every thread count:
//
//   * every cell writes only its own per-index result slot, so the returned
//     vector is in input order regardless of scheduling;
//   * per-cell seeds are derived deterministically from (base_seed, index)
//     — CellSeed — never from worker ids or timing;
//   * every engine a cell reaches is itself thread-count invariant (batch
//     gradient, proximity, GEMM, parallel eval), so the per-cell value does
//     not depend on how many threads the cell's inner work got.
//
// Nested parallelism is cooperative rather than oversubscribed: while the
// grid holds the shared pool, any parallel kernel or parallel-eval call a
// cell makes falls back to its serial path (kernels::ParallelTasks
// re-entrancy/busy fallback), and the CellContext tells the cell to build
// its own engines single-threaded (inner_threads == 1). A serial grid (one
// pool thread, or a single cell) leaves inner engines on the auto thread
// policy instead — the full machine keeps working either way.

#ifndef SEPRIVGEMB_RUNNER_EXPERIMENT_RUNNER_H_
#define SEPRIVGEMB_RUNNER_EXPERIMENT_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace sepriv::runner {

/// Everything a cell body receives from the scheduler.
struct CellContext {
  /// Deterministic per-cell seed (CellSeed(base_seed, index), or the cell's
  /// own seed for ExperimentCell grids).
  uint64_t seed = 0;

  /// Thread budget for engines the cell constructs (SePrivGEmbConfig::
  /// num_threads and friends): while cells run concurrently this is the
  /// pool's threads divided across the cells (>= 1; exactly 1 once the
  /// grid is at least as wide as the pool), and 0 (= auto policy) when the
  /// grid itself executes serially. Only wall-clock depends on this value
  /// — every engine is thread-count invariant.
  size_t inner_threads = 1;
};

/// Deterministic per-cell seed: splitmix64-derived from (base_seed, index).
/// Stable across platforms and runs; distinct indices give independent
/// streams (the same mixing discipline as Rng::Fork(stream)).
uint64_t CellSeed(uint64_t base_seed, uint64_t index);

/// Generic deterministic fan-out: runs task(i, ctx) for every i in
/// [0, n_cells) over the shared pool, ctx.seed = CellSeed(base_seed, i).
/// Each task must confine its writes to caller-owned per-index slots; under
/// that contract the slot contents are bit-identical for every thread
/// count. Blocks until every cell has run.
void RunGrid(size_t n_cells, uint64_t base_seed,
             const std::function<void(size_t index, const CellContext& ctx)>&
                 task);

/// One scalar-valued run cell of an experiment grid.
struct ExperimentCell {
  std::string label;  // stable identifier for reports/debugging
  uint64_t seed = 0;  // handed to fn via CellContext::seed
  std::function<double(const CellContext&)> fn;
};

/// Runs every cell (concurrently, deterministically) and returns the values
/// in input order.
std::vector<double> RunCells(std::span<const ExperimentCell> cells);

/// The bench family's legacy Repeat schedule: `repeats` cells seeded
/// 1000 + 37·r, executed as a grid and summarised mean±sd. Seeds are kept
/// byte-compatible with the old serial Repeat() so table values stay
/// comparable across PRs; only the wall-clock changed.
RunSummary RepeatCells(int repeats,
                       const std::function<double(const CellContext&)>& fn);

}  // namespace sepriv::runner

#endif  // SEPRIVGEMB_RUNNER_EXPERIMENT_RUNNER_H_
