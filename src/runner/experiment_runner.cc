#include "runner/experiment_runner.h"

#include <algorithm>

#include "linalg/kernels.h"
#include "util/rng.h"

namespace sepriv::runner {

// Thread-safety model: the runner owns no locks — each cell writes only its
// own result slot (out[i]), and cross-cell synchronisation is exactly the
// ParallelTasks fork/join barrier (linalg/kernels.cc), whose pool/latch
// discipline is machine-checked by -Wthread-safety via util/mutex.h. Cell
// bodies must not share mutable state; everything they need arrives in the
// per-cell CellContext.

uint64_t CellSeed(uint64_t base_seed, uint64_t index) {
  // Two chained splitmix64 steps over (base, index): a single step keyed
  // only by base ^ index would alias (base, index) pairs with equal xor.
  uint64_t h = HashMix(0x5eedce11u ^ base_seed, index + 1);
  return HashMix(h, base_seed);
}

void RunGrid(size_t n_cells, uint64_t base_seed,
             const std::function<void(size_t index, const CellContext& ctx)>&
                 task) {
  if (n_cells == 0) return;
  // Inner-engine thread budget: the pool's threads divided across the
  // cells, so a grid wider than the machine runs single-threaded engines
  // (anything else oversubscribes) while a narrow grid on a big machine
  // still feeds every core (e.g. 4 cells on 16 threads -> 4-thread
  // engines). A serial grid hands the auto policy (0) through so a lone
  // cell uses the whole machine. The choice only steers wall-clock — every
  // engine is thread-count invariant, so the slot contents cannot depend
  // on it.
  const size_t pool_threads = kernels::LinalgThreads();
  const bool concurrent = n_cells > 1 && pool_threads > 1;
  const size_t inner_threads =
      concurrent ? std::max<size_t>(1, pool_threads / n_cells) : 0;
  kernels::ParallelTasks(n_cells, [&](size_t i) {
    CellContext ctx;
    ctx.seed = CellSeed(base_seed, i);
    ctx.inner_threads = inner_threads;
    task(i, ctx);
  });
}

std::vector<double> RunCells(std::span<const ExperimentCell> cells) {
  std::vector<double> out(cells.size(), 0.0);
  RunGrid(cells.size(), /*base_seed=*/0,
          [&](size_t i, const CellContext& ctx) {
            CellContext cell_ctx = ctx;
            cell_ctx.seed = cells[i].seed;  // the cell's own seed wins
            out[i] = cells[i].fn(cell_ctx);
          });
  return out;
}

RunSummary RepeatCells(int repeats,
                       const std::function<double(const CellContext&)>& fn) {
  std::vector<ExperimentCell> cells;
  cells.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    cells.push_back({"repeat/" + std::to_string(r),
                     static_cast<uint64_t>(1000 + 37 * r), fn});
  }
  return Summarize(RunCells(cells));
}

}  // namespace sepriv::runner
