// DPGGAN baseline (Yang et al., IJCAI'21, GAN branch), reduced
// re-implementation.
//
// Generator holds a trainable per-node embedding table decoded through
// σ(e_i·e_j); the discriminator is an MLP over concatenated pair embeddings
// classifying observed edges against generated non-edge pairs. Discriminator
// gradients are clipped and noised (link-DP style); the generator step is
// post-processing of the discriminator. Embedding = generator table.

#ifndef SEPRIVGEMB_BASELINES_DPGGAN_H_
#define SEPRIVGEMB_BASELINES_DPGGAN_H_

#include "baselines/embedder.h"

namespace sepriv {

class DpgGanEmbedder : public GraphEmbedder {
 public:
  explicit DpgGanEmbedder(const EmbedderOptions& opts) : opts_(opts) {}
  std::string Name() const override { return "DPGGAN"; }
  EmbedderResult Embed(const Graph& graph) override;

 private:
  EmbedderOptions opts_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_BASELINES_DPGGAN_H_
