#include "baselines/embedder.h"

#include "baselines/dpggan.h"
#include "baselines/dpgvae.h"
#include "baselines/gap.h"
#include "util/check.h"

namespace sepriv {

std::unique_ptr<GraphEmbedder> MakeBaseline(BaselineKind kind,
                                            const EmbedderOptions& opts) {
  switch (kind) {
    case BaselineKind::kDpgGan:
      return std::make_unique<DpgGanEmbedder>(opts);
    case BaselineKind::kDpgVae:
      return std::make_unique<DpgVaeEmbedder>(opts);
    case BaselineKind::kGap:
      return std::make_unique<GapEmbedder>(opts);
    case BaselineKind::kProGap:
      return std::make_unique<ProGapEmbedder>(opts);
  }
  SEPRIV_CHECK(false, "unknown baseline kind");
  return nullptr;
}

std::string BaselineKindName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kDpgGan: return "DPGGAN";
    case BaselineKind::kDpgVae: return "DPGVAE";
    case BaselineKind::kGap: return "GAP";
    case BaselineKind::kProGap: return "ProGAP";
  }
  return "unknown";
}

}  // namespace sepriv
