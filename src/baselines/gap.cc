#include "baselines/gap.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/calibration.h"
#include "dp/gaussian_mechanism.h"
#include "linalg/kernels.h"
#include "nn/gcn.h"
#include "util/check.h"
#include "util/rng.h"

namespace sepriv {
namespace {

/// GAP's degree-capped sum aggregation: every node pushes its (unit-norm)
/// row into at most K neighbouring sums, so removing one node changes the
/// aggregate by at most √K in L2 — the node-level sensitivity the Gaussian
/// noise must be scaled by. (This is the "large noise caused by high
/// sensitivity" effect the paper criticises in DP GNNs: the √K factor is
/// irreducible at node level even after row normalisation.)
Matrix CappedSumAggregate(const Graph& g, const Matrix& h, size_t cap) {
  Matrix out(h.rows(), h.cols());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto src = h.Row(u);
    const auto nbrs = g.Neighbors(u);
    const size_t fanout = std::min(cap, nbrs.size());
    for (size_t t = 0; t < fanout; ++t) {
      kernels::Axpy(1.0, src.data(), out.Row(nbrs[t]).data(), h.cols());
    }
  }
  return out;
}

/// One noisy aggregation hop: H' = rownorm( cappedsum(H) + N(0, (√K·σ)²) ).
/// Rows are unit-normalised BEFORE aggregation (bounding each node's
/// contribution to 1) and the noise std carries the √K sensitivity.
/// Sanitizer: the GAP noise-injection step; its caller (Embed) calibrates σ
/// through the accountant and charges one RDP step per hop.
SEPRIV_DP_SANITIZER
Matrix NoisyHop(const Graph& g, Matrix h, size_t cap, double sigma, Rng& rng) {
  RowNormalizeInPlace(h);
  Matrix next = CappedSumAggregate(g, h, cap);
  const double stddev = std::sqrt(static_cast<double>(cap)) * sigma;
  AddGaussianNoiseToAllRows(next, stddev, rng);
  return next;
}

/// Mean of hop matrices, projected (truncated/padded) to `dim` columns.
Matrix CombineHops(const std::vector<Matrix>& hops, size_t dim) {
  SEPRIV_CHECK(!hops.empty(), "no hops to combine");
  const size_t n = hops[0].rows();
  const size_t src_dim = hops[0].cols();
  Matrix mean(n, src_dim);
  for (const Matrix& h : hops) mean.Axpy(1.0 / static_cast<double>(hops.size()), h);
  if (src_dim == dim) return mean;
  Matrix out(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      out(i, d) = d < src_dim ? mean(i, d) : 0.0;
    }
  }
  return out;
}

}  // namespace

EmbedderResult GapEmbedder::Embed(const Graph& graph) {
  const EmbedderOptions& o = opts_;
  const size_t n = graph.num_nodes();
  SEPRIV_CHECK(n >= 2, "graph too small for GAP");
  Rng rng(o.seed);

  // Random features, projected at the requested embedding width.
  Matrix x(n, o.dim);
  x.FillGaussian(rng, 0.0, 1.0);
  RowNormalizeInPlace(x);

  // Budget split: every training iteration re-perturbs all `hops`
  // aggregations (the compatibility flaw §VI-D describes), so the per-query
  // noise is calibrated for agg_epochs × hops Gaussian queries, doubled to
  // account for the DPSGD cost of the classification modules the original
  // system also trains (DESIGN.md §2.3).
  const size_t num_queries =
      2 * std::max<size_t>(1, o.agg_epochs) * static_cast<size_t>(o.hops);
  const double sigma =
      o.non_private
          ? 0.0
          : CalibrateNoiseMultiplier(o.epsilon, o.delta, num_queries);

  EmbedderResult result;
  std::vector<Matrix> hops;
  for (size_t epoch = 0; epoch < std::max<size_t>(1, o.agg_epochs); ++epoch) {
    hops.clear();
    hops.push_back(x);
    Matrix h = x;
    for (int l = 0; l < o.hops; ++l) {
      h = NoisyHop(graph, h, o.degree_cap, sigma, rng);
      hops.push_back(h);
    }
    ++result.epochs_run;
  }
  // The model consumes the final iteration's (noisy) aggregates.
  result.embedding = CombineHops(hops, o.dim);
  result.noise_multiplier_used = sigma;
  result.spent_epsilon = o.non_private ? 0.0 : o.epsilon;
  return result;
}

EmbedderResult ProGapEmbedder::Embed(const Graph& graph) {
  const EmbedderOptions& o = opts_;
  const size_t n = graph.num_nodes();
  SEPRIV_CHECK(n >= 2, "graph too small for ProGAP");
  Rng rng(o.seed);

  Matrix x(n, o.dim);
  x.FillGaussian(rng, 0.0, 1.0);
  RowNormalizeInPlace(x);

  // Progressive training: each stage perturbs its aggregation ONCE and
  // caches it, so only `hops` queries split the budget — doubled for the
  // per-stage module training cost (DESIGN.md §2.3).
  const auto num_queries = 2 * static_cast<size_t>(o.hops);
  const double sigma =
      o.non_private
          ? 0.0
          : CalibrateNoiseMultiplier(o.epsilon, o.delta, num_queries);

  EmbedderResult result;
  std::vector<Matrix> stages;
  stages.push_back(x);
  Matrix h = x;
  for (int s = 0; s < o.hops; ++s) {
    h = NoisyHop(graph, h, o.degree_cap, sigma, rng);
    stages.push_back(h);
    ++result.epochs_run;
  }
  result.embedding = CombineHops(stages, o.dim);
  result.noise_multiplier_used = sigma;
  result.spent_epsilon = o.non_private ? 0.0 : o.epsilon;
  return result;
}

}  // namespace sepriv
