#include "baselines/dpggan.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/accountant.h"
#include "linalg/kernels.h"
#include "nn/mlp.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace sepriv {
namespace {

/// Builds the discriminator input row [e_u ; e_v].
void FillPairRow(Matrix& dst, size_t row, const Matrix& table, NodeId u,
                 NodeId v) {
  const auto eu = table.Row(u);
  const auto ev = table.Row(v);
  auto out = dst.Row(row);
  std::copy(eu.begin(), eu.end(), out.begin());
  std::copy(ev.begin(), ev.end(), out.begin() + table.cols());
}

}  // namespace

EmbedderResult DpgGanEmbedder::Embed(const Graph& graph) {
  const EmbedderOptions& o = opts_;
  const size_t n = graph.num_nodes();
  SEPRIV_CHECK(n >= 4 && graph.num_edges() >= 4, "graph too small for DPGGAN");
  Rng rng(o.seed);

  // Generator: trainable node-embedding table.
  Matrix table(n, o.dim);
  table.FillGaussian(rng, 0.0, 0.1);

  // Discriminator MLP: [2r] -> hidden -> 1.
  Mlp disc({2 * o.dim, o.hidden_dim, 1}, rng);

  const double q = std::min(
      1.0, static_cast<double>(o.batch_size) /
               static_cast<double>(graph.num_edges()));
  RdpAccountant acct(o.noise_multiplier, q);
  const size_t allowed =
      o.non_private ? o.max_epochs : acct.MaxSteps(o.epsilon, o.delta);

  EmbedderResult result;
  const auto& edges = graph.Edges();
  const size_t b = o.batch_size;

  for (size_t epoch = 0; epoch < o.max_epochs && epoch < allowed; ++epoch) {
    // ---- Discriminator step (the only step that touches real edges) ----
    Matrix d_in(2 * b, 2 * o.dim);
    Matrix targets(2 * b, 1);
    std::vector<std::pair<NodeId, NodeId>> fake_pairs(b);
    for (size_t i = 0; i < b; ++i) {
      const Edge& e = edges[rng.UniformInt(edges.size())];
      FillPairRow(d_in, i, table, e.u, e.v);
      targets(i, 0) = 1.0;
      NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      if (u == v) v = static_cast<NodeId>((v + 1) % n);
      fake_pairs[i] = {u, v};
      FillPairRow(d_in, b + i, table, u, v);
      targets(b + i, 0) = 0.0;
    }
    disc.ZeroGrad();
    Matrix logits = disc.Forward(d_in);
    // BCE with logits over the 2b pairs.
    Matrix grad_logits(2 * b, 1);
    const double inv = 1.0 / static_cast<double>(2 * b);
    for (size_t i = 0; i < 2 * b; ++i) {
      grad_logits(i, 0) = (Sigmoid(logits(i, 0)) - targets(i, 0)) * inv;
    }
    disc.Backward(grad_logits);
    if (!o.non_private) {
      disc.ClipGrads(o.clip_threshold);
      disc.AddGradNoise(o.clip_threshold * o.noise_multiplier * inv, rng);
    }
    disc.AdamStep(o.learning_rate);

    // ---- Generator step: make fake pairs look real (post-processing) ----
    Matrix g_in(b, 2 * o.dim);
    for (size_t i = 0; i < b; ++i) {
      FillPairRow(g_in, i, table, fake_pairs[i].first, fake_pairs[i].second);
    }
    disc.ZeroGrad();
    Matrix g_logits = disc.Forward(g_in);
    Matrix g_grad(b, 1);
    const double ginv = 1.0 / static_cast<double>(b);
    for (size_t i = 0; i < b; ++i) {
      // Non-saturating generator loss: -log σ(D(fake)).
      g_grad(i, 0) = (Sigmoid(g_logits(i, 0)) - 1.0) * ginv;
    }
    const Matrix grad_in = disc.Backward(g_grad);
    // Route dL/d(pair input) back onto the embedding table.
    for (size_t i = 0; i < b; ++i) {
      const auto gi = grad_in.Row(i);
      kernels::Axpy(-o.learning_rate, gi.data(),
                    table.Row(fake_pairs[i].first).data(), o.dim);
      kernels::Axpy(-o.learning_rate, gi.data() + o.dim,
                    table.Row(fake_pairs[i].second).data(), o.dim);
    }

    if (!o.non_private) acct.Step();
    ++result.epochs_run;
  }

  result.embedding = std::move(table);
  result.spent_epsilon =
      o.non_private ? 0.0 : acct.GetEpsilon(o.delta).epsilon;
  result.noise_multiplier_used = o.noise_multiplier;
  return result;
}

}  // namespace sepriv
