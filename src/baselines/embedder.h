// Common interface for the competing private embedding methods of the
// paper's evaluation (DPGGAN, DPGVAE [2], GAP [6], ProGAP [7]).
//
// Each baseline is re-implemented from scratch on the src/nn substrate in a
// reduced but behaviour-preserving form; DESIGN.md §2.3 documents exactly
// what is preserved (mechanism type, where noise enters, how the privacy
// budget splits) and what is simplified (width/depth/schedules).

#ifndef SEPRIVGEMB_BASELINES_EMBEDDER_H_
#define SEPRIVGEMB_BASELINES_EMBEDDER_H_

#include <memory>
#include <string>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/privacy_annotations.h"

namespace sepriv {

struct EmbedderOptions {
  size_t dim = 128;              // embedding dimension r
  double epsilon = 3.5;          // target privacy budget
  double delta = 1e-5;
  double noise_multiplier = 5.0; // σ for the DPSGD-style baselines
  double clip_threshold = 1.0;   // C for the DPSGD-style baselines
  size_t max_epochs = 200;
  size_t batch_size = 128;
  double learning_rate = 1e-2;
  uint64_t seed = 3;

  // GNN-specific knobs.
  size_t feature_dim = 32;  // random node features (paper §VI-A uses random
                            // features for GAP/ProGAP on featureless graphs)
  size_t hidden_dim = 64;
  int hops = 2;             // aggregation hops (GAP) / stages (ProGAP)
  size_t agg_epochs = 30;   // GAP: training iterations, each re-perturbing
  size_t degree_cap = 8;    // K: out-contribution bound of the degree-capped
                            // sum aggregation; node-level sensitivity = √K

  /// Disables noise and budget stopping (diagnostics only).
  bool non_private = false;
};

// Public sink: the baseline's published embedding.
struct SEPRIV_PUBLIC_SINK EmbedderResult {
  Matrix embedding;          // |V| x dim
  size_t epochs_run = 0;
  double spent_epsilon = 0.0;
  double noise_multiplier_used = 0.0;  // for calibrated baselines
};

class GraphEmbedder {
 public:
  virtual ~GraphEmbedder() = default;
  virtual std::string Name() const = 0;
  /// Sanitizer: every baseline's Embed is its accountant-gated DP pipeline
  /// (the non_private diagnostic mode is statically sanctioned, like the
  /// trainer's kNone strategy).
  SEPRIV_DP_SANITIZER
  virtual EmbedderResult Embed(const Graph& graph) = 0;
};

enum class BaselineKind { kDpgGan, kDpgVae, kGap, kProGap };

std::unique_ptr<GraphEmbedder> MakeBaseline(BaselineKind kind,
                                            const EmbedderOptions& opts);

std::string BaselineKindName(BaselineKind kind);

}  // namespace sepriv

#endif  // SEPRIVGEMB_BASELINES_EMBEDDER_H_
