#include "baselines/dpgvae.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/accountant.h"
#include "dp/clipping.h"
#include "linalg/kernels.h"
#include "nn/activations.h"
#include "nn/gcn.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace sepriv {

EmbedderResult DpgVaeEmbedder::Embed(const Graph& graph) {
  const EmbedderOptions& o = opts_;
  const size_t n = graph.num_nodes();
  SEPRIV_CHECK(n >= 4 && graph.num_edges() >= 4, "graph too small for DPGVAE");
  Rng rng(o.seed);

  // Random node features (featureless-graph protocol of paper §VI-A).
  Matrix x(n, o.feature_dim);
  x.FillGaussian(rng, 0.0, 1.0);
  NormalizedAdjacency a_hat(graph, /*include_self_loops=*/true);
  const Matrix x_agg = a_hat.Multiply(x);  // constant w.r.t. parameters

  Linear enc1(o.feature_dim, o.hidden_dim, rng);
  ReluLayer relu;
  Linear enc_mu(o.hidden_dim, o.dim, rng);
  Linear enc_lv(o.hidden_dim, o.dim, rng);
  AdamState adam_e1w, adam_e1b, adam_muw, adam_mub, adam_lvw, adam_lvb;

  // Budget: one clipped+noised gradient query per epoch over an edge
  // minibatch (sampling rate B/|E|).
  const double q = std::min(
      1.0, static_cast<double>(o.batch_size) /
               static_cast<double>(graph.num_edges()));
  RdpAccountant acct(o.noise_multiplier, q);
  const size_t allowed =
      o.non_private ? o.max_epochs : acct.MaxSteps(o.epsilon, o.delta);

  EmbedderResult result;
  Matrix mu;  // kept for the final embedding

  const auto& edges = graph.Edges();
  for (size_t epoch = 0; epoch < o.max_epochs && epoch < allowed; ++epoch) {
    // Forward pass through the encoder.
    Matrix h_pre = enc1.Forward(x_agg);
    Matrix h = relu.Forward(h_pre);
    Matrix h_agg = a_hat.Multiply(h);
    mu = enc_mu.Forward(h_agg);
    Matrix logvar = enc_lv.Forward(h_agg);
    // Standard VAE stabilisation: clamp log-variance so the sampled latent
    // noise cannot explode (std <= 1).
    for (size_t i = 0; i < logvar.size(); ++i) {
      logvar.data()[i] = std::clamp(logvar.data()[i], -5.0, 0.0);
    }

    // Reparameterise z = μ + exp(0.5·logvar) ⊙ ξ.
    Matrix xi(n, o.dim);
    xi.FillGaussian(rng, 0.0, 1.0);
    Matrix z = mu;
    for (size_t i = 0; i < z.size(); ++i) {
      z.data()[i] += std::exp(0.5 * logvar.data()[i]) * xi.data()[i];
    }

    // Decoder minibatch: B positive edges + B random non-edges.
    struct Pair { NodeId u, v; double t; };
    std::vector<Pair> batch;
    batch.reserve(2 * o.batch_size);
    for (size_t b = 0; b < o.batch_size; ++b) {
      const Edge& e = edges[rng.UniformInt(edges.size())];
      batch.push_back({e.u, e.v, 1.0});
      NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      for (int tries = 0; tries < 32 && (u == v || graph.HasEdge(u, v));
           ++tries) {
        u = static_cast<NodeId>(rng.UniformInt(n));
        v = static_cast<NodeId>(rng.UniformInt(n));
      }
      batch.push_back({u, v, 0.0});
    }

    // BCE on logits z_u·z_v; accumulate dL/dz sparsely.
    Matrix grad_z(n, o.dim);
    const double inv_batch = 1.0 / static_cast<double>(batch.size());
    for (const Pair& p : batch) {
      const double logit = z.RowDot(p.u, z, p.v);
      const double coeff = (kernels::Sigmoid(logit) - p.t) * inv_batch;
      kernels::Axpy(coeff, z.Row(p.v).data(), grad_z.Row(p.u).data(), o.dim);
      kernels::Axpy(coeff, z.Row(p.u).data(), grad_z.Row(p.v).data(), o.dim);
    }

    // KL regulariser.
    const KlResult kl = GaussianKl(mu, logvar, /*weight=*/1.0 / static_cast<double>(n));

    // Backprop: dz -> (dμ, dlogvar); add KL grads.
    Matrix grad_mu = grad_z;
    grad_mu.Axpy(1.0, kl.grad_mu);
    Matrix grad_lv(n, o.dim);
    for (size_t i = 0; i < grad_lv.size(); ++i) {
      grad_lv.data()[i] = grad_z.data()[i] * xi.data()[i] * 0.5 *
                          std::exp(0.5 * logvar.data()[i]);
    }
    grad_lv.Axpy(1.0, kl.grad_logvar);

    enc1.ZeroGrad();
    enc_mu.ZeroGrad();
    enc_lv.ZeroGrad();
    Matrix gh_agg = enc_mu.Backward(grad_mu);
    gh_agg.Axpy(1.0, enc_lv.Backward(grad_lv));
    Matrix gh = a_hat.Multiply(gh_agg);  // Â is symmetric: Âᵀ = Â
    Matrix gh_pre = relu.Backward(gh);
    enc1.Backward(gh_pre);

    if (!o.non_private) {
      // Batch-level clip + noise (simplified DPSGD; DESIGN.md §2.3).
      double sq = enc1.GradSquaredNorm() + enc_mu.GradSquaredNorm() +
                  enc_lv.GradSquaredNorm();
      const double scale = ClipScale(std::sqrt(sq), o.clip_threshold);
      if (scale != 1.0) {
        enc1.ScaleGrads(scale);
        enc_mu.ScaleGrads(scale);
        enc_lv.ScaleGrads(scale);
      }
      const double stddev = o.clip_threshold * o.noise_multiplier * inv_batch;
      enc1.AddGradNoise(stddev, rng);
      enc_mu.AddGradNoise(stddev, rng);
      enc_lv.AddGradNoise(stddev, rng);
    }

    adam_e1w.Update(enc1.w(), enc1.grad_w(), o.learning_rate);
    adam_e1b.Update(enc1.b(), enc1.grad_b(), o.learning_rate);
    adam_muw.Update(enc_mu.w(), enc_mu.grad_w(), o.learning_rate);
    adam_mub.Update(enc_mu.b(), enc_mu.grad_b(), o.learning_rate);
    adam_lvw.Update(enc_lv.w(), enc_lv.grad_w(), o.learning_rate);
    adam_lvb.Update(enc_lv.b(), enc_lv.grad_b(), o.learning_rate);

    if (!o.non_private) acct.Step();
    ++result.epochs_run;
  }

  // Published embedding: the sampled VAE latent z = μ + exp(0.5·logvar)⊙ξ —
  // the generative representation the original model exposes. Under
  // KL-regularised, DP-noised training the posterior stays close to N(0, I),
  // which is precisely why the paper finds DPGGAN/DPGVAE embeddings weak.
  {
    Matrix h = relu.Forward(enc1.Forward(x_agg));
    Matrix h_agg = a_hat.Multiply(h);
    mu = enc_mu.Forward(h_agg);
    Matrix logvar = enc_lv.Forward(h_agg);
    Matrix z = mu;
    for (size_t i = 0; i < z.size(); ++i) {
      const double lv = std::clamp(logvar.data()[i], -5.0, 0.0);
      z.data()[i] += std::exp(0.5 * lv) * rng.Normal();
    }
    result.embedding = std::move(z);
  }
  result.spent_epsilon =
      o.non_private ? 0.0 : acct.GetEpsilon(o.delta).epsilon;
  result.noise_multiplier_used = o.noise_multiplier;
  return result;
}

}  // namespace sepriv
