// GAP baseline (Sajadmanesh et al., USENIX Security'23) and ProGAP
// (Sajadmanesh & Gatica-Perez, WSDM'24), reduced re-implementations.
//
// Both perturb *aggregations* rather than gradients: node rows are L2-row-
// normalised (bounding node-level sensitivity) and Gaussian noise is added to
// each aggregation hop Â·H. The difference this paper leans on (§VI-D):
//
//  * GAP — aggregate outputs are re-perturbed at every training iteration,
//    so the budget divides across (epochs × hops) queries;
//  * ProGAP — progressive stages perturb each aggregation once and cache it,
//    so the budget divides across (stages) queries only.
//
// Per-query noise is calibrated from the target (ε, δ) and the query count
// via dp/calibration.h. Node features are random (featureless protocol);
// the embedding is the mean of the (noisy) propagated feature hops projected
// to the requested dimension.

#ifndef SEPRIVGEMB_BASELINES_GAP_H_
#define SEPRIVGEMB_BASELINES_GAP_H_

#include "baselines/embedder.h"

namespace sepriv {

class GapEmbedder : public GraphEmbedder {
 public:
  explicit GapEmbedder(const EmbedderOptions& opts) : opts_(opts) {}
  std::string Name() const override { return "GAP"; }
  EmbedderResult Embed(const Graph& graph) override;

 private:
  EmbedderOptions opts_;
};

class ProGapEmbedder : public GraphEmbedder {
 public:
  explicit ProGapEmbedder(const EmbedderOptions& opts) : opts_(opts) {}
  std::string Name() const override { return "ProGAP"; }
  EmbedderResult Embed(const Graph& graph) override;

 private:
  EmbedderOptions opts_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_BASELINES_GAP_H_
