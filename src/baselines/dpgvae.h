// DPGVAE baseline (Yang et al., IJCAI'21 "Secure deep graph generation with
// link differential privacy", VAE branch), reduced re-implementation.
//
// Architecture: one-hop GCN encoder over random features producing (μ,
// logσ²), reparameterised z, inner-product edge decoder with BCE + KL loss.
// Training uses clipped, noised gradients with the same RDP accountant as
// SE-PrivGEmb; the premature-convergence behaviour at small ε that the paper
// reports arises from the budget-implied epoch cap. Embedding = μ.

#ifndef SEPRIVGEMB_BASELINES_DPGVAE_H_
#define SEPRIVGEMB_BASELINES_DPGVAE_H_

#include "baselines/embedder.h"

namespace sepriv {

class DpgVaeEmbedder : public GraphEmbedder {
 public:
  explicit DpgVaeEmbedder(const EmbedderOptions& opts) : opts_(opts) {}
  std::string Name() const override { return "DPGVAE"; }
  EmbedderResult Embed(const Graph& graph) override;

 private:
  EmbedderOptions opts_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_BASELINES_DPGVAE_H_
