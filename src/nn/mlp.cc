#include "nn/mlp.h"

#include <cmath>

#include "dp/clipping.h"
#include "util/check.h"

namespace sepriv {

Mlp::Mlp(const std::vector<size_t>& dims, Rng& rng) {
  SEPRIV_CHECK(dims.size() >= 2, "MLP needs at least in/out dims");
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
  relus_.resize(layers_.size() > 0 ? layers_.size() - 1 : 0);
  adam_w_.resize(layers_.size());
  adam_b_.resize(layers_.size());
}

Matrix Mlp::Forward(const Matrix& x) {
  Matrix h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = relus_[i].Forward(h);
  }
  return h;
}

Matrix Mlp::Backward(const Matrix& grad_y) {
  Matrix g = grad_y;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i + 1 < layers_.size()) g = relus_[i].Backward(g);
    g = layers_[i].Backward(g);
  }
  return g;
}

void Mlp::ZeroGrad() {
  for (auto& l : layers_) l.ZeroGrad();
}

double Mlp::GradNorm() const {
  double sq = 0.0;
  for (const auto& l : layers_) sq += l.GradSquaredNorm();
  return std::sqrt(sq);
}

void Mlp::ClipGrads(double threshold) {
  const double scale = ClipScale(GradNorm(), threshold);
  if (scale != 1.0) {
    for (auto& l : layers_) l.ScaleGrads(scale);
  }
}

void Mlp::AddGradNoise(double stddev, Rng& rng) {
  for (auto& l : layers_) l.AddGradNoise(stddev, rng);
}

void Mlp::AdamStep(double lr) {
  for (size_t i = 0; i < layers_.size(); ++i) {
    adam_w_[i].Update(layers_[i].w(), layers_[i].grad_w(), lr);
    adam_b_[i].Update(layers_[i].b(), layers_[i].grad_b(), lr);
  }
}

}  // namespace sepriv
