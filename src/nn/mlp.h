// Small multi-layer perceptron: Linear (+ReLU) stacks with joint
// forward/backward, Adam training, and DPSGD-style gradient handling.

#ifndef SEPRIVGEMB_NN_MLP_H_
#define SEPRIVGEMB_NN_MLP_H_

#include <vector>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "util/privacy_annotations.h"

namespace sepriv {

class Mlp {
 public:
  /// dims = {in, h1, ..., out}; ReLU between layers, linear output.
  Mlp(const std::vector<size_t>& dims, Rng& rng);

  Matrix Forward(const Matrix& x);
  /// Returns dL/dx; parameter grads accumulate inside the layers.
  Matrix Backward(const Matrix& grad_y);

  void ZeroGrad();

  /// Joint L2 norm of all parameter gradients.
  double GradNorm() const;

  /// Clips the joint gradient to `threshold` (no-op if within bound).
  void ClipGrads(double threshold);

  /// Adds N(0, stddev²) noise to every parameter gradient.
  SEPRIV_DP_SANITIZER
  void AddGradNoise(double stddev, Rng& rng);

  /// One Adam step on all layers with the accumulated gradients.
  void AdamStep(double lr);

  std::vector<Linear>& layers() { return layers_; }

 private:
  std::vector<Linear> layers_;
  std::vector<ReluLayer> relus_;
  std::vector<AdamState> adam_w_, adam_b_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_NN_MLP_H_
