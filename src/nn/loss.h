// Losses used by the baseline models.

#ifndef SEPRIVGEMB_NN_LOSS_H_
#define SEPRIVGEMB_NN_LOSS_H_

#include "linalg/matrix.h"

namespace sepriv {

struct LossResult {
  double value = 0.0;
  Matrix grad;  // dL/dlogits (already averaged over elements)
};

/// Binary cross-entropy on logits, mean over all elements:
///   L = mean( log(1+e^z) - t·z ), dL/dz = (σ(z) - t) / N.
/// Numerically stable for large |z|.
LossResult BceWithLogits(const Matrix& logits, const Matrix& targets);

/// Mean squared error, mean over elements.
LossResult MseLoss(const Matrix& pred, const Matrix& target);

/// KL( N(mu, exp(logvar)) || N(0, I) ) summed over dims, mean over rows:
///   0.5 Σ (exp(logvar) + mu² - 1 - logvar).
/// Gradients are returned for mu and logvar (scaled by `weight`).
struct KlResult {
  double value = 0.0;
  Matrix grad_mu;
  Matrix grad_logvar;
};
KlResult GaussianKl(const Matrix& mu, const Matrix& logvar, double weight);

}  // namespace sepriv

#endif  // SEPRIVGEMB_NN_LOSS_H_
