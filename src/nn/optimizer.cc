#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace sepriv {

void SgdUpdate(Matrix& param, const Matrix& grad, double lr) {
  SEPRIV_CHECK(param.SameShape(grad), "SGD shape mismatch");
  param.Axpy(-lr, grad);
}

void AdamState::Update(Matrix& param, const Matrix& grad, double lr,
                       double beta1, double beta2, double eps) {
  if (m_.size() == 0) {
    m_ = Matrix(param.rows(), param.cols());
    v_ = Matrix(param.rows(), param.cols());
  }
  SEPRIV_CHECK(param.SameShape(grad) && param.SameShape(m_),
               "Adam shape mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t_));
  for (size_t i = 0; i < param.size(); ++i) {
    const double g = grad.data()[i];
    double& m = m_.data()[i];
    double& v = v_.data()[i];
    m = beta1 * m + (1.0 - beta1) * g;
    v = beta2 * v + (1.0 - beta2) * g * g;
    const double m_hat = m / bc1;
    const double v_hat = v / bc2;
    param.data()[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace sepriv
