#include "nn/activations.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace sepriv {

Matrix ReluLayer::Forward(const Matrix& x) {
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    const bool pos = x.data()[i] > 0.0;
    mask_.data()[i] = pos ? 1.0 : 0.0;
    y.data()[i] = pos ? x.data()[i] : 0.0;
  }
  return y;
}

Matrix ReluLayer::Backward(const Matrix& grad_y) const {
  SEPRIV_CHECK(grad_y.SameShape(mask_), "ReLU backward shape mismatch");
  return Hadamard(grad_y, mask_);
}

Matrix SigmoidLayer::Forward(const Matrix& x) {
  out_ = Matrix(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) out_.data()[i] = Sigmoid(x.data()[i]);
  return out_;
}

Matrix SigmoidLayer::Backward(const Matrix& grad_y) const {
  SEPRIV_CHECK(grad_y.SameShape(out_), "Sigmoid backward shape mismatch");
  Matrix gx(grad_y.rows(), grad_y.cols());
  for (size_t i = 0; i < gx.size(); ++i) {
    const double s = out_.data()[i];
    gx.data()[i] = grad_y.data()[i] * s * (1.0 - s);
  }
  return gx;
}

Matrix TanhLayer::Forward(const Matrix& x) {
  out_ = Matrix(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i)
    out_.data()[i] = std::tanh(x.data()[i]);
  return out_;
}

Matrix TanhLayer::Backward(const Matrix& grad_y) const {
  SEPRIV_CHECK(grad_y.SameShape(out_), "Tanh backward shape mismatch");
  Matrix gx(grad_y.rows(), grad_y.cols());
  for (size_t i = 0; i < gx.size(); ++i) {
    const double t = out_.data()[i];
    gx.data()[i] = grad_y.data()[i] * (1.0 - t * t);
  }
  return gx;
}

}  // namespace sepriv
