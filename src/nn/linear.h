// Fully connected layer with manual backpropagation.
//
// The baselines (DPGGAN/DPGVAE/GAP/ProGAP) are small MLP/GCN models; this
// substrate provides exactly the pieces they need, with gradients verified
// against finite differences in tests/nn/linear_test.cc.

#ifndef SEPRIVGEMB_NN_LINEAR_H_
#define SEPRIVGEMB_NN_LINEAR_H_

#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/privacy_annotations.h"

namespace sepriv {

/// y = x·W + b, where x is (batch x in), W is (in x out), b is (1 x out).
class Linear {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  /// Caches x for the backward pass.
  Matrix Forward(const Matrix& x);

  /// Accumulates dW/db into grad_w()/grad_b() and returns dL/dx.
  Matrix Backward(const Matrix& grad_y);

  void ZeroGrad();

  Matrix& w() { return w_; }
  Matrix& b() { return b_; }
  Matrix& grad_w() { return gw_; }
  Matrix& grad_b() { return gb_; }
  const Matrix& w() const { return w_; }
  const Matrix& b() const { return b_; }

  size_t in_dim() const { return w_.rows(); }
  size_t out_dim() const { return w_.cols(); }

  /// Squared L2 norm of all parameter gradients (for DP clipping).
  double GradSquaredNorm() const;

  /// Scales all parameter gradients (clip application).
  void ScaleGrads(double factor);

  /// Adds i.i.d. N(0, stddev²) to all parameter gradients (DPSGD noise).
  SEPRIV_DP_SANITIZER
  void AddGradNoise(double stddev, Rng& rng);

 private:
  Matrix w_, b_;
  Matrix gw_, gb_;
  Matrix last_x_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_NN_LINEAR_H_
