// Sparse graph operators for the GNN baselines.
//
// NormalizedAdjacency implements the symmetric GCN propagation matrix
// Â = D̃^{-1/2} (A + I) D̃^{-1/2}; RowNormalizeInPlace provides the row-wise
// L2 normalisation GAP applies before each perturbed aggregation hop.

#ifndef SEPRIVGEMB_NN_GCN_H_
#define SEPRIVGEMB_NN_GCN_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace sepriv {

class NormalizedAdjacency {
 public:
  /// include_self_loops = true builds the GCN Â; false the plain symmetric
  /// normalised adjacency.
  explicit NormalizedAdjacency(const Graph& graph,
                               bool include_self_loops = true);

  /// Y = Â · X (sparse-dense product).
  Matrix Multiply(const Matrix& x) const;

  size_t num_nodes() const { return graph_->num_nodes(); }

 private:
  const Graph* graph_;
  bool self_loops_;
  std::vector<double> inv_sqrt_deg_;
};

/// Scales every row of m to unit L2 norm (rows of all zeros are left as-is).
void RowNormalizeInPlace(Matrix& m);

}  // namespace sepriv

#endif  // SEPRIVGEMB_NN_GCN_H_
