#include "nn/gcn.h"

#include <cmath>

#include "util/check.h"

namespace sepriv {

NormalizedAdjacency::NormalizedAdjacency(const Graph& graph,
                                         bool include_self_loops)
    : graph_(&graph), self_loops_(include_self_loops) {
  inv_sqrt_deg_.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const double d = static_cast<double>(graph.Degree(v)) +
                     (self_loops_ ? 1.0 : 0.0);
    inv_sqrt_deg_[v] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
  }
}

Matrix NormalizedAdjacency::Multiply(const Matrix& x) const {
  SEPRIV_CHECK(x.rows() == graph_->num_nodes(),
               "NormalizedAdjacency: %zu rows vs |V|=%zu", x.rows(),
               graph_->num_nodes());
  Matrix y(x.rows(), x.cols());
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    auto dst = y.Row(v);
    const double sv = inv_sqrt_deg_[v];
    if (self_loops_) {
      const auto self = x.Row(v);
      const double w = sv * sv;
      for (size_t d = 0; d < x.cols(); ++d) dst[d] += w * self[d];
    }
    for (NodeId u : graph_->Neighbors(v)) {
      const double w = sv * inv_sqrt_deg_[u];
      const auto src = x.Row(u);
      for (size_t d = 0; d < x.cols(); ++d) dst[d] += w * src[d];
    }
  }
  return y;
}

void RowNormalizeInPlace(Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i) {
    const double norm = m.RowNorm(i);
    if (norm <= 0.0) continue;
    auto row = m.Row(i);
    for (double& x : row) x /= norm;
  }
}

}  // namespace sepriv
