#include "nn/gcn.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"

namespace sepriv {
namespace {

// Output rows per parallel task in Multiply. Fixed (never derived from the
// thread count) so the shard boundaries — and with them the accumulation
// order — are identical for every pool size.
constexpr size_t kRowShard = 64;

// Below this many node·dim accumulations the dispatch overhead dominates.
constexpr size_t kParallelWorkFloor = size_t{1} << 16;

}  // namespace

NormalizedAdjacency::NormalizedAdjacency(const Graph& graph,
                                         bool include_self_loops)
    : graph_(&graph), self_loops_(include_self_loops) {
  inv_sqrt_deg_.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const double d = static_cast<double>(graph.Degree(v)) +
                     (self_loops_ ? 1.0 : 0.0);
    inv_sqrt_deg_[v] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
  }
}

Matrix NormalizedAdjacency::Multiply(const Matrix& x) const {
  SEPRIV_CHECK(x.rows() == graph_->num_nodes(),
               "NormalizedAdjacency: %zu rows vs |V|=%zu", x.rows(),
               graph_->num_nodes());
  const size_t n = graph_->num_nodes();
  const size_t dim = x.cols();
  Matrix y(x.rows(), dim);

  // Each task owns a contiguous block of output rows; row v accumulates its
  // neighbour contributions in CSR order regardless of which worker runs the
  // shard, so the product is bit-identical across thread counts.
  const auto shard = [&](size_t t) {
    const NodeId lo = static_cast<NodeId>(t * kRowShard);
    const NodeId hi =
        static_cast<NodeId>(std::min<size_t>(n, (t + 1) * kRowShard));
    for (NodeId v = lo; v < hi; ++v) {
      auto dst = y.Row(v);
      const double sv = inv_sqrt_deg_[v];
      if (self_loops_) {
        kernels::Axpy(sv * sv, x.Row(v).data(), dst.data(), dim);
      }
      for (NodeId u : graph_->Neighbors(v)) {
        kernels::Axpy(sv * inv_sqrt_deg_[u], x.Row(u).data(), dst.data(),
                      dim);
      }
    }
  };

  const size_t shards = (n + kRowShard - 1) / kRowShard;
  const size_t work = (graph_->num_edges() * 2 + n) * dim;
  if (work < kParallelWorkFloor) {
    for (size_t t = 0; t < shards; ++t) shard(t);
  } else {
    kernels::ParallelTasks(shards, shard);
  }
  return y;
}

void RowNormalizeInPlace(Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i) {
    const double norm = m.RowNorm(i);
    if (norm <= 0.0) continue;
    auto row = m.Row(i);
    kernels::Scale(1.0 / norm, row.data(), row.size());
  }
}

}  // namespace sepriv
