#include "nn/linear.h"

#include "linalg/kernels.h"
#include "util/check.h"
#include "util/math_util.h"

namespace sepriv {

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng)
    : w_(in_dim, out_dim),
      b_(1, out_dim),
      gw_(in_dim, out_dim),
      gb_(1, out_dim) {
  w_.FillXavier(rng);
}

Matrix Linear::Forward(const Matrix& x) {
  SEPRIV_CHECK(x.cols() == w_.rows(), "Linear: input dim %zu != %zu", x.cols(),
               w_.rows());
  last_x_ = x;
  Matrix y = MatMul(x, w_);
  for (size_t i = 0; i < y.rows(); ++i) {
    kernels::Axpy(1.0, b_.data(), y.Row(i).data(), y.cols());
  }
  return y;
}

Matrix Linear::Backward(const Matrix& grad_y) {
  SEPRIV_CHECK(grad_y.rows() == last_x_.rows() && grad_y.cols() == w_.cols(),
               "Linear backward shape mismatch");
  // dW += x^T · gy ; db += column sums of gy ; dx = gy · W^T.
  gw_.Axpy(1.0, MatTMul(last_x_, grad_y));
  for (size_t i = 0; i < grad_y.rows(); ++i) {
    kernels::Axpy(1.0, grad_y.Row(i).data(), gb_.data(), grad_y.cols());
  }
  return MatMulT(grad_y, w_);
}

void Linear::ZeroGrad() {
  gw_.SetZero();
  gb_.SetZero();
}

double Linear::GradSquaredNorm() const {
  return kernels::SquaredNorm(gw_.data(), gw_.size()) +
         kernels::SquaredNorm(gb_.data(), gb_.size());
}

void Linear::ScaleGrads(double factor) {
  gw_.Scale(factor);
  gb_.Scale(factor);
}

void Linear::AddGradNoise(double stddev, Rng& rng) {
  if (stddev <= 0.0) return;
  kernels::AccumulateGaussian(rng, gw_.data(), gw_.size(), stddev);
  kernels::AccumulateGaussian(rng, gb_.data(), gb_.size(), stddev);
}

}  // namespace sepriv
