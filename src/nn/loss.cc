#include "nn/loss.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace sepriv {

LossResult BceWithLogits(const Matrix& logits, const Matrix& targets) {
  SEPRIV_CHECK(logits.SameShape(targets), "BCE shape mismatch");
  LossResult r;
  r.grad = Matrix(logits.rows(), logits.cols());
  const double inv_n = 1.0 / static_cast<double>(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    const double z = logits.data()[i];
    const double t = targets.data()[i];
    r.value += Log1pExp(z) - t * z;
    r.grad.data()[i] = (Sigmoid(z) - t) * inv_n;
  }
  r.value *= inv_n;
  return r;
}

LossResult MseLoss(const Matrix& pred, const Matrix& target) {
  SEPRIV_CHECK(pred.SameShape(target), "MSE shape mismatch");
  LossResult r;
  r.grad = Matrix(pred.rows(), pred.cols());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    r.value += d * d;
    r.grad.data()[i] = 2.0 * d * inv_n;
  }
  r.value *= inv_n;
  return r;
}

KlResult GaussianKl(const Matrix& mu, const Matrix& logvar, double weight) {
  SEPRIV_CHECK(mu.SameShape(logvar), "KL shape mismatch");
  KlResult r;
  r.grad_mu = Matrix(mu.rows(), mu.cols());
  r.grad_logvar = Matrix(mu.rows(), mu.cols());
  const double inv_rows = 1.0 / static_cast<double>(mu.rows());
  const double scale = weight * inv_rows;
  for (size_t i = 0; i < mu.size(); ++i) {
    const double m = mu.data()[i];
    const double lv = logvar.data()[i];
    const double v = std::exp(lv);
    r.value += 0.5 * (v + m * m - 1.0 - lv) * scale;
    r.grad_mu.data()[i] = m * scale;
    r.grad_logvar.data()[i] = 0.5 * (v - 1.0) * scale;
  }
  return r;
}

}  // namespace sepriv
