// SGD and Adam parameter updates (per-matrix state, explicitly wired —
// this substrate has no autograd graph).

#ifndef SEPRIVGEMB_NN_OPTIMIZER_H_
#define SEPRIVGEMB_NN_OPTIMIZER_H_

#include "linalg/matrix.h"

namespace sepriv {

/// param -= lr * grad.
void SgdUpdate(Matrix& param, const Matrix& grad, double lr);

/// Per-parameter-matrix Adam state (Kingma & Ba).
class AdamState {
 public:
  AdamState() = default;
  AdamState(size_t rows, size_t cols) : m_(rows, cols), v_(rows, cols) {}

  /// One Adam step; the step counter is internal.
  void Update(Matrix& param, const Matrix& grad, double lr,
              double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  size_t step() const { return t_; }

 private:
  Matrix m_, v_;
  size_t t_ = 0;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_NN_OPTIMIZER_H_
