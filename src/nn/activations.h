// Elementwise activation layers with cached backward passes.

#ifndef SEPRIVGEMB_NN_ACTIVATIONS_H_
#define SEPRIVGEMB_NN_ACTIVATIONS_H_

#include "linalg/matrix.h"

namespace sepriv {

class ReluLayer {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_y) const;

 private:
  Matrix mask_;  // 1 where x > 0
};

class SigmoidLayer {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_y) const;

 private:
  Matrix out_;  // σ(x), reused as σ(1-σ) factor
};

class TanhLayer {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_y) const;

 private:
  Matrix out_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_NN_ACTIVATIONS_H_
