#include "proximity/proximity_engine.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/atomic_file.h"
#include "util/check.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace sepriv {
namespace {

// ---------------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------------

/// Splits [0, m) into at most `target` contiguous ranges of roughly equal
/// size whose boundaries never fall inside a run of equal `key(e)` — each
/// distinct source node is computed by exactly one shard, so a shard's
/// provider clone keeps its row cache warm and no row is computed twice.
template <typename KeyFn>
std::vector<std::pair<size_t, size_t>> AlignedShards(size_t m, size_t target,
                                                     const KeyFn& key) {
  std::vector<std::pair<size_t, size_t>> shards;
  if (m == 0) return shards;
  target = std::max<size_t>(1, target);
  const size_t chunk = (m + target - 1) / target;
  size_t begin = 0;
  while (begin < m) {
    size_t end = std::min(m, begin + chunk);
    while (end < m && key(end) == key(end - 1)) ++end;  // don't split a group
    shards.emplace_back(begin, end);
    begin = end;
  }
  return shards;
}

/// Fixed-size pool of provider clones handed out to in-flight chunks. The
/// pool never holds more concurrent chunks than worker threads, so Acquire
/// cannot run dry; a mutex-guarded freelist is plenty (a few transitions per
/// shard, not per edge).
class ClonePool {
 public:
  ClonePool(const ProximityProvider& prototype, size_t count) {
    clones_.reserve(count);
    free_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      clones_.push_back(prototype.Clone());
      free_.push_back(clones_.back().get());
    }
  }

  ProximityProvider* Acquire() SEPRIV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    SEPRIV_CHECK(!free_.empty(), "clone pool exhausted (pool misuse)");
    ProximityProvider* p = free_.back();
    free_.pop_back();
    return p;
  }

  void Release(ProximityProvider* p) SEPRIV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    free_.push_back(p);
  }

 private:
  // clones_ is immutable after the constructor (workers mutate the clones
  // they own, never the vector); only the freelist needs the latch.
  std::vector<std::unique_ptr<ProximityProvider>> clones_;
  std::vector<ProximityProvider*> free_ SEPRIV_GUARDED_BY(mu_);
  Mutex mu_;
};

/// Runs one direction pass: every shard queries a private clone for its
/// index range. `per_index` must write to a per-index slot — determinism
/// then follows from At() being pure in (i, j).
template <typename PerIndex>
void RunPass(const std::vector<std::pair<size_t, size_t>>& shards,
             ClonePool& clones, ThreadPool& pool, const PerIndex& per_index) {
  pool.ParallelFor(shards.size(), /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      ProximityProvider* p = clones.Acquire();
      for (size_t i = shards[s].first; i < shards[s].second; ++i)
        per_index(*p, i);
      clones.Release(p);
    }
  });
}

// ---------------------------------------------------------------------------
// Cache serialisation
// ---------------------------------------------------------------------------

constexpr uint32_t kCacheMagic = 0x53505843;  // "SPXC"
constexpr uint32_t kCacheVersion = 1;

/// splitmix64-chained digest over a byte range, 8 bytes at a time with a
/// zero-padded tail. Guards the cache file against truncation/corruption.
uint64_t DigestBytes(const char* data, size_t len) {
  uint64_t h = 0xc3a5c85c97cb3127ULL ^ len;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    h = HashMix(h, word);
  }
  if (i < len) {
    uint64_t word = 0;
    std::memcpy(&word, data + i, len - i);
    h = HashMix(h, word);
  }
  return h;
}

/// The ProximityOptions fields in a fixed serialisation order, for both the
/// cache-file header (stored and re-verified field by field on load — a key
/// hash collision can therefore cause a spurious miss, never a wrong hit)
/// and HashProximityOptions. Serialised individually, never memcpy'd as a
/// struct: padding bytes would leak indeterminate memory into the file.
std::vector<uint64_t> OptionWords(const ProximityOptions& opts) {
  return {static_cast<uint64_t>(opts.katz_max_length),
          std::bit_cast<uint64_t>(opts.katz_beta),
          std::bit_cast<uint64_t>(opts.ppr_alpha),
          static_cast<uint64_t>(opts.ppr_iterations),
          static_cast<uint64_t>(opts.dw_window),
          static_cast<uint64_t>(opts.dw_walks_per_node),
          static_cast<uint64_t>(opts.dw_walk_length),
          opts.seed};
}

template <typename T>
void AppendPod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendDoubles(std::string& out, const std::vector<double>& v) {
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(double));
}

/// Bounds-checked cursor over a loaded cache file.
class ByteReader {
 public:
  ByteReader(const char* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (cur_ + sizeof(T) > len_) return false;
    std::memcpy(out, data_ + cur_, sizeof(T));
    cur_ += sizeof(T);
    return true;
  }

  bool ReadString(size_t n, std::string* out) {
    if (cur_ + n > len_) return false;
    out->assign(data_ + cur_, n);
    cur_ += n;
    return true;
  }

  bool ReadDoubles(size_t n, std::vector<double>* out) {
    if (n > (len_ - cur_) / sizeof(double)) return false;
    out->resize(n);
    std::memcpy(out->data(), data_ + cur_, n * sizeof(double));
    cur_ += n * sizeof(double);
    return true;
  }

  bool AtEnd() const { return cur_ == len_; }

 private:
  const char* data_;
  size_t len_;
  size_t cur_ = 0;
};

uint64_t CacheKeyHash(const std::string& provider_name,
                      const ProximityOptions& opts) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ HashProximityOptions(opts);
  for (char c : provider_name) {
    h = HashMix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

}  // namespace

EdgeProximity ParallelEdgeProximities(const Graph& graph,
                                      const ProximityProvider& provider,
                                      ThreadPool& pool) {
  const auto& edges = graph.Edges();
  const size_t m = edges.size();
  const size_t threads = pool.num_threads();
  // The serial engine IS the single-thread path: bit-identity with
  // ComputeEdgeProximities holds by construction, not by parallel text.
  if (threads <= 1 || m < 2) return ComputeEdgeProximities(graph, provider);

  std::vector<double> forward(m), backward(m);

  // Reverse-direction visit order grouped by v (canonical edges are sorted
  // by u), exactly as in the serial engine.
  std::vector<size_t> by_v(m);
  for (size_t e = 0; e < m; ++e) by_v[e] = e;
  std::sort(by_v.begin(), by_v.end(), [&edges](size_t a, size_t b) {
    return edges[a].v != edges[b].v ? edges[a].v < edges[b].v
                                    : edges[a].u < edges[b].u;
  });

  // Over-decompose (4 shards per worker) so a shard that hits expensive hub
  // rows doesn't straggle the pass; clones stay bounded by the thread count.
  const size_t target_shards = threads * 4;
  ClonePool clones(provider, threads);

  const auto fwd_shards = AlignedShards(
      m, target_shards, [&edges](size_t e) { return edges[e].u; });
  RunPass(fwd_shards, clones, pool,
          [&](const ProximityProvider& p, size_t i) {
            forward[i] = p.At(edges[i].u, edges[i].v);
          });

  const auto bwd_shards = AlignedShards(
      m, target_shards, [&](size_t e) { return edges[by_v[e]].v; });
  RunPass(bwd_shards, clones, pool,
          [&](const ProximityProvider& p, size_t i) {
            const size_t idx = by_v[i];
            backward[idx] = p.At(edges[idx].v, edges[idx].u);
          });

  return FinalizeEdgeProximities(forward, backward);
}

EdgeProximity ParallelEdgeProximities(const Graph& graph,
                                      const ProximityProvider& provider,
                                      size_t num_threads) {
  ThreadPool pool(ThreadPool::ResolveThreads(num_threads));
  return ParallelEdgeProximities(graph, provider, pool);
}

uint64_t HashProximityOptions(const ProximityOptions& opts) {
  uint64_t h = 0xa0761d6478bd642fULL;
  for (uint64_t word : OptionWords(opts)) h = HashMix(h, word);
  return h;
}

std::string ProximityCacheFileName(const Graph& graph,
                                   const std::string& provider_name,
                                   const ProximityOptions& opts) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "prox_%016llx_%016llx.bin",
                static_cast<unsigned long long>(graph.Fingerprint()),
                static_cast<unsigned long long>(
                    CacheKeyHash(provider_name, opts)));
  return buf;
}

bool SaveEdgeProximityCache(const std::string& dir, const Graph& graph,
                            const std::string& provider_name,
                            const ProximityOptions& opts,
                            const EdgeProximity& prox) {
  if (dir.empty()) return false;
  if (prox.values.size() != graph.num_edges() ||
      prox.normalized.size() != graph.num_edges()) {
    return false;  // refuse to persist an inconsistent table
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort

  std::string blob;
  blob.reserve(64 + provider_name.size() +
               2 * prox.values.size() * sizeof(double));
  AppendPod(blob, kCacheMagic);
  AppendPod(blob, kCacheVersion);
  AppendPod(blob, graph.Fingerprint());
  AppendPod(blob, static_cast<uint64_t>(graph.num_nodes()));
  AppendPod(blob, static_cast<uint64_t>(graph.num_edges()));
  for (uint64_t word : OptionWords(opts)) AppendPod(blob, word);
  AppendPod(blob, static_cast<uint32_t>(provider_name.size()));
  blob.append(provider_name);
  AppendDoubles(blob, prox.values);
  AppendPod(blob, prox.min_positive);
  AppendPod(blob, prox.max_value);
  AppendDoubles(blob, prox.normalized);
  AppendPod(blob, prox.normalized_min_positive);
  AppendPod(blob, DigestBytes(blob.data(), blob.size()));

  const std::string final_path =
      dir + "/" + ProximityCacheFileName(graph, provider_name, opts);
  // Durable atomic publish (write-temp + fsync file and directory + rename):
  // concurrent loaders see either the old complete file or the new complete
  // file, never a torn write — and a crash right after Save returns cannot
  // resurface an empty or garbage file at the final path.
  return WriteFileAtomic(final_path, blob.data(), blob.size(),
                         "proxcache.edge")
      .ok();
}

std::optional<EdgeProximity> LoadEdgeProximityCache(
    const std::string& dir, const Graph& graph,
    const std::string& provider_name, const ProximityOptions& opts) {
  if (dir.empty()) return std::nullopt;
  const std::string path =
      dir + "/" + ProximityCacheFileName(graph, provider_name, opts);
  std::string blob;
  if (!ReadFileToString(path, &blob, "proxcache.edge").ok())
    return std::nullopt;

  // Whole-file checksum first: truncated, appended-to, or bit-flipped files
  // all fail here before any field is trusted.
  if (blob.size() < sizeof(uint64_t)) return std::nullopt;
  const size_t payload_len = blob.size() - sizeof(uint64_t);
  uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, blob.data() + payload_len, sizeof(uint64_t));
  if (DigestBytes(blob.data(), payload_len) != stored_digest)
    return std::nullopt;

  ByteReader reader(blob.data(), payload_len);
  uint32_t magic = 0, version = 0, name_len = 0;
  uint64_t fingerprint = 0, num_nodes = 0, num_edges = 0;
  std::string name;
  if (!reader.Read(&magic) || magic != kCacheMagic) return std::nullopt;
  if (!reader.Read(&version) || version != kCacheVersion) return std::nullopt;
  if (!reader.Read(&fingerprint) || fingerprint != graph.Fingerprint())
    return std::nullopt;
  if (!reader.Read(&num_nodes) || num_nodes != graph.num_nodes())
    return std::nullopt;
  if (!reader.Read(&num_edges) || num_edges != graph.num_edges())
    return std::nullopt;
  // The full option vector is compared field by field — a key-hash collision
  // in the file name can only cause a spurious miss, never a wrong hit.
  for (uint64_t expected : OptionWords(opts)) {
    uint64_t stored = 0;
    if (!reader.Read(&stored) || stored != expected) return std::nullopt;
  }
  if (!reader.Read(&name_len) || !reader.ReadString(name_len, &name) ||
      name != provider_name) {
    return std::nullopt;
  }

  EdgeProximity out;
  if (!reader.ReadDoubles(static_cast<size_t>(num_edges), &out.values) ||
      !reader.Read(&out.min_positive) || !reader.Read(&out.max_value) ||
      !reader.ReadDoubles(static_cast<size_t>(num_edges), &out.normalized) ||
      !reader.Read(&out.normalized_min_positive) || !reader.AtEnd()) {
    return std::nullopt;
  }
  return out;
}

EdgeProximity CachedEdgeProximities(const Graph& graph,
                                    const ProximityProvider& provider,
                                    const ProximityOptions& opts,
                                    ThreadPool& pool,
                                    const std::string& cache_dir) {
  if (!cache_dir.empty()) {
    if (auto cached =
            LoadEdgeProximityCache(cache_dir, graph, provider.Name(), opts)) {
      return std::move(*cached);
    }
  }
  EdgeProximity prox = ParallelEdgeProximities(graph, provider, pool);
  if (!cache_dir.empty() && graph.num_edges() > 0) {
    SaveEdgeProximityCache(cache_dir, graph, provider.Name(), opts, prox);
  }
  return prox;
}

EdgeProximity CachedEdgeProximities(const Graph& graph,
                                    const ProximityProvider& provider,
                                    const ProximityOptions& opts,
                                    size_t num_threads,
                                    const std::string& cache_dir) {
  if (!cache_dir.empty()) {
    if (auto cached =
            LoadEdgeProximityCache(cache_dir, graph, provider.Name(), opts)) {
      return std::move(*cached);
    }
  }
  // The pool is constructed only on a miss — a warm hit spins up (and joins)
  // no worker threads at all — then the pool overload owns the shared
  // compute-and-save path (its redundant re-probe is one failed open).
  ThreadPool pool(ThreadPool::ResolveThreads(num_threads));
  return CachedEdgeProximities(graph, provider, opts, pool, cache_dir);
}

std::string ProximityCacheDirFromEnv() {
  return GetStringEnv("SEPRIV_PROXIMITY_CACHE");
}

// ---------------------------------------------------------------------------
// Shard-granular proximity passes
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kShardCacheMagic = 0x53505853;  // "SPXS"
constexpr uint32_t kShardCacheVersion = 1;

/// One shard's canonical edges materialised for the parallel passes:
/// edge-level memory for ONE shard only, the bound the out-of-core layer is
/// built around.
std::vector<Edge> ShardEdgeList(const ShardView& view) {
  std::vector<Edge> edges;
  edges.reserve(view.edge_count);
  view.ForEachEdge([&edges](size_t, NodeId u, NodeId v) {
    edges.push_back({u, v});
  });
  return edges;
}

std::string ShardCacheFilePath(const std::string& cache_root,
                               uint64_t graph_fingerprint, size_t shard_index,
                               uint64_t shard_fingerprint,
                               const std::string& provider_name,
                               const ProximityOptions& opts) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/shard_%zu_%016llx.bin", shard_index,
                static_cast<unsigned long long>(shard_fingerprint));
  return cache_root + "/" +
         ShardProximityCacheDirName(graph_fingerprint, provider_name, opts) +
         buf;
}

}  // namespace

ShardProximity ComputeShardProximities(const ShardView& view,
                                       const ProximityProvider& provider,
                                       ThreadPool& pool) {
  const std::vector<Edge> edges = ShardEdgeList(view);
  const size_t m = edges.size();
  ShardProximity out;
  out.forward.resize(m);
  out.backward.resize(m);
  if (m == 0) return out;

  const size_t threads = pool.num_threads();
  if (threads <= 1 || m < 2) {
    // Serial path, identical visit discipline to ComputeEdgeProximities:
    // forward grouped by u (the natural order), backward grouped by v.
    for (size_t e = 0; e < m; ++e)
      out.forward[e] = provider.At(edges[e].u, edges[e].v);
    std::vector<size_t> by_v(m);
    for (size_t e = 0; e < m; ++e) by_v[e] = e;
    std::sort(by_v.begin(), by_v.end(), [&edges](size_t a, size_t b) {
      return edges[a].v != edges[b].v ? edges[a].v < edges[b].v
                                      : edges[a].u < edges[b].u;
    });
    for (size_t idx : by_v)
      out.backward[idx] = provider.At(edges[idx].v, edges[idx].u);
    return out;
  }

  std::vector<size_t> by_v(m);
  for (size_t e = 0; e < m; ++e) by_v[e] = e;
  std::sort(by_v.begin(), by_v.end(), [&edges](size_t a, size_t b) {
    return edges[a].v != edges[b].v ? edges[a].v < edges[b].v
                                    : edges[a].u < edges[b].u;
  });

  const size_t target_shards = threads * 4;
  ClonePool clones(provider, threads);

  const auto fwd_shards = AlignedShards(
      m, target_shards, [&edges](size_t e) { return edges[e].u; });
  RunPass(fwd_shards, clones, pool,
          [&](const ProximityProvider& p, size_t i) {
            out.forward[i] = p.At(edges[i].u, edges[i].v);
          });

  const auto bwd_shards = AlignedShards(
      m, target_shards, [&](size_t e) { return edges[by_v[e]].v; });
  RunPass(bwd_shards, clones, pool,
          [&](const ProximityProvider& p, size_t i) {
            const size_t idx = by_v[i];
            out.backward[idx] = p.At(edges[idx].v, edges[idx].u);
          });

  return out;
}

std::string ShardProximityCacheDirName(uint64_t graph_fingerprint,
                                       const std::string& provider_name,
                                       const ProximityOptions& opts) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "proxshard_%016llx_%016llx",
                static_cast<unsigned long long>(graph_fingerprint),
                static_cast<unsigned long long>(
                    CacheKeyHash(provider_name, opts)));
  return buf;
}

bool SaveShardProximityCache(const std::string& cache_root,
                             uint64_t graph_fingerprint, size_t shard_index,
                             uint64_t shard_fingerprint,
                             const std::string& provider_name,
                             const ProximityOptions& opts,
                             const ShardProximity& prox) {
  if (cache_root.empty()) return false;
  if (prox.forward.size() != prox.backward.size()) return false;
  const std::string path =
      ShardCacheFilePath(cache_root, graph_fingerprint, shard_index,
                         shard_fingerprint, provider_name, opts);
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);  // best effort

  std::string blob;
  blob.reserve(96 + provider_name.size() +
               2 * prox.forward.size() * sizeof(double));
  AppendPod(blob, kShardCacheMagic);
  AppendPod(blob, kShardCacheVersion);
  AppendPod(blob, graph_fingerprint);
  AppendPod(blob, static_cast<uint64_t>(shard_index));
  AppendPod(blob, shard_fingerprint);
  AppendPod(blob, static_cast<uint64_t>(prox.forward.size()));
  for (uint64_t word : OptionWords(opts)) AppendPod(blob, word);
  AppendPod(blob, static_cast<uint32_t>(provider_name.size()));
  blob.append(provider_name);
  AppendDoubles(blob, prox.forward);
  AppendDoubles(blob, prox.backward);
  AppendPod(blob, DigestBytes(blob.data(), blob.size()));

  // Same durable publish discipline as the whole-graph cache writer.
  return WriteFileAtomic(path, blob.data(), blob.size(), "proxcache.shard")
      .ok();
}

std::optional<ShardProximity> LoadShardProximityCache(
    const std::string& cache_root, uint64_t graph_fingerprint,
    size_t shard_index, uint64_t shard_fingerprint,
    const std::string& provider_name, const ProximityOptions& opts,
    size_t edge_count) {
  if (cache_root.empty()) return std::nullopt;
  const std::string path =
      ShardCacheFilePath(cache_root, graph_fingerprint, shard_index,
                         shard_fingerprint, provider_name, opts);
  std::string blob;
  if (!ReadFileToString(path, &blob, "proxcache.shard").ok())
    return std::nullopt;

  if (blob.size() < sizeof(uint64_t)) return std::nullopt;
  const size_t payload_len = blob.size() - sizeof(uint64_t);
  uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, blob.data() + payload_len, sizeof(uint64_t));
  if (DigestBytes(blob.data(), payload_len) != stored_digest)
    return std::nullopt;

  ByteReader reader(blob.data(), payload_len);
  uint32_t magic = 0, version = 0, name_len = 0;
  uint64_t graph_fp = 0, idx = 0, shard_fp = 0, count = 0;
  std::string name;
  if (!reader.Read(&magic) || magic != kShardCacheMagic) return std::nullopt;
  if (!reader.Read(&version) || version != kShardCacheVersion)
    return std::nullopt;
  if (!reader.Read(&graph_fp) || graph_fp != graph_fingerprint)
    return std::nullopt;
  if (!reader.Read(&idx) || idx != shard_index) return std::nullopt;
  // The shard fingerprint is verified from the HEADER, not just the file
  // name: a file renamed or hash-colliding into place still cannot serve
  // stale data for a changed shard.
  if (!reader.Read(&shard_fp) || shard_fp != shard_fingerprint)
    return std::nullopt;
  if (!reader.Read(&count) || count != edge_count) return std::nullopt;
  for (uint64_t expected : OptionWords(opts)) {
    uint64_t stored = 0;
    if (!reader.Read(&stored) || stored != expected) return std::nullopt;
  }
  if (!reader.Read(&name_len) || !reader.ReadString(name_len, &name) ||
      name != provider_name) {
    return std::nullopt;
  }

  ShardProximity out;
  if (!reader.ReadDoubles(edge_count, &out.forward) ||
      !reader.ReadDoubles(edge_count, &out.backward) || !reader.AtEnd()) {
    return std::nullopt;
  }
  return out;
}

ShardProximity CachedShardProximities(const ShardView& view,
                                      size_t shard_index,
                                      uint64_t graph_fingerprint,
                                      const ProximityProvider& provider,
                                      const ProximityOptions& opts,
                                      ThreadPool& pool,
                                      const std::string& cache_root) {
  const uint64_t shard_fp = ShardFingerprint(view);
  if (!cache_root.empty()) {
    if (auto cached = LoadShardProximityCache(
            cache_root, graph_fingerprint, shard_index, shard_fp,
            provider.Name(), opts, view.edge_count)) {
      return std::move(*cached);
    }
  }
  ShardProximity prox = ComputeShardProximities(view, provider, pool);
  if (!cache_root.empty() && !prox.forward.empty()) {
    SaveShardProximityCache(cache_root, graph_fingerprint, shard_index,
                            shard_fp, provider.Name(), opts, prox);
  }
  return prox;
}

EdgeProximity ShardedEdgeProximities(GraphStore& store,
                                     const ProximityProvider& provider,
                                     const ProximityOptions& opts,
                                     ThreadPool& pool,
                                     const std::string& cache_root) {
  const size_t m = store.num_edges();
  std::vector<double> forward(m), backward(m);
  for (size_t s = 0; s < store.num_shards(); ++s) {
    store.Prefetch(s + 1);
    const PinnedShard pin = store.Pin(s);
    const ShardView& view = pin.view();
    const ShardProximity sp = CachedShardProximities(
        view, s, store.fingerprint(), provider, opts, pool, cache_root);
    SEPRIV_CHECK(sp.forward.size() == view.edge_count,
                 "shard %zu proximity size %zu != edge count %zu", s,
                 sp.forward.size(), view.edge_count);
    std::copy(sp.forward.begin(), sp.forward.end(),
              forward.begin() + static_cast<ptrdiff_t>(view.edge_begin));
    std::copy(sp.backward.begin(), sp.backward.end(),
              backward.begin() + static_cast<ptrdiff_t>(view.edge_begin));
  }
  return FinalizeEdgeProximities(forward, backward);
}

}  // namespace sepriv
