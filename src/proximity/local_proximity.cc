#include "proximity/local_proximity.h"

#include <cmath>

namespace sepriv {
namespace {

/// Applies `fn(w)` to every common neighbour w of i and j, accumulating.
template <typename Fn>
double AccumulateCommon(const Graph& g, NodeId i, NodeId j, Fn fn) {
  const auto a = g.Neighbors(i);
  const auto b = g.Neighbors(j);
  size_t x = 0, y = 0;
  double acc = 0.0;
  while (x < a.size() && y < b.size()) {
    if (a[x] < b[y]) {
      ++x;
    } else if (a[x] > b[y]) {
      ++y;
    } else {
      acc += fn(a[x]);
      ++x;
      ++y;
    }
  }
  return acc;
}

}  // namespace

double CommonNeighborsProximity::At(NodeId i, NodeId j) const {
  return static_cast<double>(graph_.CommonNeighborCount(i, j));
}

double JaccardProximity::At(NodeId i, NodeId j) const {
  const double cn = static_cast<double>(graph_.CommonNeighborCount(i, j));
  const double un = static_cast<double>(graph_.Degree(i)) +
                    static_cast<double>(graph_.Degree(j)) - cn;
  return un > 0.0 ? cn / un : 0.0;
}

double PreferentialAttachmentProximity::At(NodeId i, NodeId j) const {
  return static_cast<double>(graph_.Degree(i)) *
         static_cast<double>(graph_.Degree(j)) * inv_two_m_;
}

double AdamicAdarProximity::At(NodeId i, NodeId j) const {
  return AccumulateCommon(graph_, i, j, [this](NodeId w) {
    // A common neighbour of two DISTINCT nodes has degree >= 2; for self
    // pairs (i == j) a degree-1 neighbour would divide by log 1 = 0, so the
    // standard convention of skipping degree-<2 nodes is applied.
    const size_t deg = graph_.Degree(w);
    return deg >= 2 ? 1.0 / std::log(static_cast<double>(deg)) : 0.0;
  });
}

double ResourceAllocationProximity::At(NodeId i, NodeId j) const {
  return AccumulateCommon(graph_, i, j, [this](NodeId w) {
    return 1.0 / static_cast<double>(graph_.Degree(w));
  });
}

}  // namespace sepriv
