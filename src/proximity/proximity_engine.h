// Parallel proximity precomputation + persistent edge-weight cache.
//
// ComputeEdgeProximities (proximity.cc) walks every canonical edge twice
// through a single-row-cached provider — two serial O(|E|) passes that
// dominate trainer startup on large graphs now that the batch-gradient hot
// path is parallel. This engine shards distinct SOURCE nodes across a
// ThreadPool, giving each shard its own ProximityProvider::Clone() so the
// per-shard row cache stays warm and no mutable state races. Because every
// provider's At() is a pure function of (i, j) — the sampled DeepWalk
// estimator derives its walks from a keyed per-source substream — the
// parallel output is bit-identical to the serial engine for every thread
// count, including the EdgeProximity min/max/normalized fields (the
// reduction tail is the literal FinalizeEdgeProximities shared with the
// serial path).
//
// The persistent cache amortises the precompute across repeated runs
// (parameter sweeps, the bench/ family, restarted trainers): a versioned
// binary file keyed by Graph::Fingerprint() + provider Name() + the full
// ProximityOptions, with a whole-file checksum. Stale, truncated, corrupt,
// or mismatched files are detected and recomputed — never trusted.

#ifndef SEPRIVGEMB_PROXIMITY_PROXIMITY_ENGINE_H_
#define SEPRIVGEMB_PROXIMITY_PROXIMITY_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "proximity/proximity.h"
#include "util/thread_pool.h"

namespace sepriv {

/// Evaluates the provider on every canonical edge using the pool's workers.
/// Bit-identical to ComputeEdgeProximities for every thread count.
EdgeProximity ParallelEdgeProximities(const Graph& graph,
                                      const ProximityProvider& provider,
                                      ThreadPool& pool);

/// Convenience overload owning a transient pool. `num_threads` follows the
/// SePrivGEmbConfig convention: 0 resolves to hardware concurrency.
EdgeProximity ParallelEdgeProximities(const Graph& graph,
                                      const ProximityProvider& provider,
                                      size_t num_threads);

/// 64-bit digest of every ProximityOptions field. Part of the cache key, so
/// any option change — even one the current provider ignores — invalidates
/// conservatively (a spurious recompute, never a wrong hit).
uint64_t HashProximityOptions(const ProximityOptions& opts);

/// File name (no directory) a cache entry lives under:
/// "prox_<graph-fingerprint>_<key-hash>.bin". The provider name and options
/// are folded into the key hash; the full key is also stored in the header
/// and re-verified on load, so hash collisions cannot alias entries.
std::string ProximityCacheFileName(const Graph& graph,
                                   const std::string& provider_name,
                                   const ProximityOptions& opts);

/// Writes `prox` under `dir` (created if missing) via write-to-temp + atomic
/// rename, so concurrent readers/writers of the same directory (e.g. ctest
/// -j sharing one cache) see only complete files. Returns false on I/O
/// failure — callers treat the cache as best-effort.
bool SaveEdgeProximityCache(const std::string& dir, const Graph& graph,
                            const std::string& provider_name,
                            const ProximityOptions& opts,
                            const EdgeProximity& prox);

/// Loads the entry for (graph, provider_name, opts) from `dir`. Returns
/// nullopt — never a partial or wrong result — when the file is missing,
/// truncated, checksum-corrupt, from a different format version, or keyed to
/// a different graph/provider/options.
std::optional<EdgeProximity> LoadEdgeProximityCache(
    const std::string& dir, const Graph& graph,
    const std::string& provider_name, const ProximityOptions& opts);

/// Cache-through front end: load from `cache_dir` when valid, else compute
/// in parallel on `pool` and save. An empty `cache_dir` disables caching.
/// The returned EdgeProximity is bit-identical whether it came from the
/// cold (computed) or warm (loaded) path.
EdgeProximity CachedEdgeProximities(const Graph& graph,
                                    const ProximityProvider& provider,
                                    const ProximityOptions& opts,
                                    ThreadPool& pool,
                                    const std::string& cache_dir);

/// As above but with a lazily constructed pool: worker threads are spun up
/// only when the cache misses and a compute is actually needed (warm trainer
/// restarts and cached sweeps create no threads). `num_threads` follows the
/// SePrivGEmbConfig convention: 0 resolves to hardware concurrency.
EdgeProximity CachedEdgeProximities(const Graph& graph,
                                    const ProximityProvider& provider,
                                    const ProximityOptions& opts,
                                    size_t num_threads,
                                    const std::string& cache_dir);

/// The SEPRIV_PROXIMITY_CACHE environment variable (empty when unset): the
/// process-wide default cache directory used when no explicit path is
/// configured, so test/bench sweeps opt in without code changes.
std::string ProximityCacheDirFromEnv();

}  // namespace sepriv

#endif  // SEPRIVGEMB_PROXIMITY_PROXIMITY_ENGINE_H_
