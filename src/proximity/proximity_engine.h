// Parallel proximity precomputation + persistent edge-weight cache.
//
// ComputeEdgeProximities (proximity.cc) walks every canonical edge twice
// through a single-row-cached provider — two serial O(|E|) passes that
// dominate trainer startup on large graphs now that the batch-gradient hot
// path is parallel. This engine shards distinct SOURCE nodes across a
// ThreadPool, giving each shard its own ProximityProvider::Clone() so the
// per-shard row cache stays warm and no mutable state races. Because every
// provider's At() is a pure function of (i, j) — the sampled DeepWalk
// estimator derives its walks from a keyed per-source substream — the
// parallel output is bit-identical to the serial engine for every thread
// count, including the EdgeProximity min/max/normalized fields (the
// reduction tail is the literal FinalizeEdgeProximities shared with the
// serial path).
//
// The persistent cache amortises the precompute across repeated runs
// (parameter sweeps, the bench/ family, restarted trainers): a versioned
// binary file keyed by Graph::Fingerprint() + provider Name() + the full
// ProximityOptions, with a whole-file checksum. Stale, truncated, corrupt,
// or mismatched files are detected and recomputed — never trusted.

#ifndef SEPRIVGEMB_PROXIMITY_PROXIMITY_ENGINE_H_
#define SEPRIVGEMB_PROXIMITY_PROXIMITY_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/shard.h"
#include "proximity/proximity.h"
#include "util/thread_pool.h"

namespace sepriv {

/// Evaluates the provider on every canonical edge using the pool's workers.
/// Bit-identical to ComputeEdgeProximities for every thread count.
EdgeProximity ParallelEdgeProximities(const Graph& graph,
                                      const ProximityProvider& provider,
                                      ThreadPool& pool);

/// Convenience overload owning a transient pool. `num_threads` follows the
/// SePrivGEmbConfig convention: 0 resolves to hardware concurrency.
EdgeProximity ParallelEdgeProximities(const Graph& graph,
                                      const ProximityProvider& provider,
                                      size_t num_threads);

/// 64-bit digest of every ProximityOptions field. Part of the cache key, so
/// any option change — even one the current provider ignores — invalidates
/// conservatively (a spurious recompute, never a wrong hit).
uint64_t HashProximityOptions(const ProximityOptions& opts);

/// File name (no directory) a cache entry lives under:
/// "prox_<graph-fingerprint>_<key-hash>.bin". The provider name and options
/// are folded into the key hash; the full key is also stored in the header
/// and re-verified on load, so hash collisions cannot alias entries.
std::string ProximityCacheFileName(const Graph& graph,
                                   const std::string& provider_name,
                                   const ProximityOptions& opts);

/// Writes `prox` under `dir` (created if missing) via write-to-temp + atomic
/// rename, so concurrent readers/writers of the same directory (e.g. ctest
/// -j sharing one cache) see only complete files. Returns false on I/O
/// failure — callers treat the cache as best-effort.
bool SaveEdgeProximityCache(const std::string& dir, const Graph& graph,
                            const std::string& provider_name,
                            const ProximityOptions& opts,
                            const EdgeProximity& prox);

/// Loads the entry for (graph, provider_name, opts) from `dir`. Returns
/// nullopt — never a partial or wrong result — when the file is missing,
/// truncated, checksum-corrupt, from a different format version, or keyed to
/// a different graph/provider/options.
std::optional<EdgeProximity> LoadEdgeProximityCache(
    const std::string& dir, const Graph& graph,
    const std::string& provider_name, const ProximityOptions& opts);

/// Cache-through front end: load from `cache_dir` when valid, else compute
/// in parallel on `pool` and save. An empty `cache_dir` disables caching.
/// The returned EdgeProximity is bit-identical whether it came from the
/// cold (computed) or warm (loaded) path.
EdgeProximity CachedEdgeProximities(const Graph& graph,
                                    const ProximityProvider& provider,
                                    const ProximityOptions& opts,
                                    ThreadPool& pool,
                                    const std::string& cache_dir);

/// As above but with a lazily constructed pool: worker threads are spun up
/// only when the cache misses and a compute is actually needed (warm trainer
/// restarts and cached sweeps create no threads). `num_threads` follows the
/// SePrivGEmbConfig convention: 0 resolves to hardware concurrency.
EdgeProximity CachedEdgeProximities(const Graph& graph,
                                    const ProximityProvider& provider,
                                    const ProximityOptions& opts,
                                    size_t num_threads,
                                    const std::string& cache_dir);

/// The SEPRIV_PROXIMITY_CACHE environment variable (empty when unset): the
/// process-wide default cache directory used when no explicit path is
/// configured, so test/bench sweeps opt in without code changes.
std::string ProximityCacheDirFromEnv();

// ---------------------------------------------------------------------------
// Shard-granular proximity passes (the out-of-core pipeline)
// ---------------------------------------------------------------------------

/// Raw directional proximities of ONE shard's canonical edges, rebased to
/// [0, edge_count): forward[k] = At(u, v), backward[k] = At(v, u). The
/// global floor/scale reduction is deliberately absent — it needs every
/// shard, and ProximityFinalizer streams it without holding them.
struct ShardProximity {
  std::vector<double> forward;
  std::vector<double> backward;
};

/// Evaluates the provider on one shard's edges using the pool's workers
/// (same shard-by-source-node decomposition as ParallelEdgeProximities).
/// Per-edge values are bit-identical to the whole-graph passes: At() is pure
/// in (i, j), and the visit set for this edge range is the same.
ShardProximity ComputeShardProximities(const ShardView& view,
                                       const ProximityProvider& provider,
                                       ThreadPool& pool);

/// Directory (no root) a graph+provider+options' per-shard cache entries
/// live under: "proxshard_<graph-fingerprint>_<key-hash>". The GRAPH
/// fingerprint is part of the directory identity, so entries can never be
/// reused across graphs; the per-shard file name and header then carry the
/// SHARD fingerprint, so within one graph a stale or foreign shard file is
/// a miss for exactly that shard — the others stay warm.
std::string ShardProximityCacheDirName(uint64_t graph_fingerprint,
                                       const std::string& provider_name,
                                       const ProximityOptions& opts);

/// Saves one shard's table under cache_root (subdirectory created on
/// demand), write-to-temp + atomic rename. Returns false on I/O failure.
bool SaveShardProximityCache(const std::string& cache_root,
                             uint64_t graph_fingerprint, size_t shard_index,
                             uint64_t shard_fingerprint,
                             const std::string& provider_name,
                             const ProximityOptions& opts,
                             const ShardProximity& prox);

/// Loads one shard's table; nullopt — never stale data — when missing,
/// truncated, checksum-corrupt, the wrong format version, or keyed to a
/// different graph/shard/provider/options/edge-count.
std::optional<ShardProximity> LoadShardProximityCache(
    const std::string& cache_root, uint64_t graph_fingerprint,
    size_t shard_index, uint64_t shard_fingerprint,
    const std::string& provider_name, const ProximityOptions& opts,
    size_t edge_count);

/// Cache-through per-shard pass: load when valid, else compute on `pool`
/// and save. Empty cache_root disables caching.
ShardProximity CachedShardProximities(const ShardView& view,
                                      size_t shard_index,
                                      uint64_t graph_fingerprint,
                                      const ProximityProvider& provider,
                                      const ProximityOptions& opts,
                                      ThreadPool& pool,
                                      const std::string& cache_root);

/// Whole-table front end over the sharded passes: iterates the store's
/// shards SEQUENTIALLY (prefetching shard s+1 while computing shard s, so at
/// most two shards are resident), then runs the shared finalisation.
/// Bit-identical to ComputeEdgeProximities / ParallelEdgeProximities on the
/// equivalent graph for every shard count, thread count, and cache state.
/// Note the returned table is O(|E|) — out-of-core consumers stream through
/// CachedShardProximities + ProximityFinalizer instead.
EdgeProximity ShardedEdgeProximities(GraphStore& store,
                                     const ProximityProvider& provider,
                                     const ProximityOptions& opts,
                                     ThreadPool& pool,
                                     const std::string& cache_root);

}  // namespace sepriv

#endif  // SEPRIVGEMB_PROXIMITY_PROXIMITY_ENGINE_H_
