// First- and second-order proximity providers (neighbourhood-local measures).

#ifndef SEPRIVGEMB_PROXIMITY_LOCAL_PROXIMITY_H_
#define SEPRIVGEMB_PROXIMITY_LOCAL_PROXIMITY_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "proximity/proximity.h"

namespace sepriv {

/// |N(i) ∩ N(j)| (Barabási & Albert [18]-era classic first-order feature).
class CommonNeighborsProximity : public ProximityProvider {
 public:
  explicit CommonNeighborsProximity(const Graph& graph) : graph_(graph) {}
  std::string Name() const override { return "common_neighbors"; }
  double At(NodeId i, NodeId j) const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<CommonNeighborsProximity>(graph_);
  }

 private:
  const Graph& graph_;
};

/// |N(i) ∩ N(j)| / |N(i) ∪ N(j)|.
class JaccardProximity : public ProximityProvider {
 public:
  explicit JaccardProximity(const Graph& graph) : graph_(graph) {}
  std::string Name() const override { return "jaccard"; }
  double At(NodeId i, NodeId j) const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<JaccardProximity>(graph_);
  }

 private:
  const Graph& graph_;
};

/// d_i * d_j / 2|E| — the "node degree" preference of the paper's
/// SE-PrivGEmb_Deg variant (preferential attachment normalisation).
class PreferentialAttachmentProximity : public ProximityProvider {
 public:
  explicit PreferentialAttachmentProximity(const Graph& graph)
      : graph_(graph),
        inv_two_m_(graph.num_edges() > 0
                       ? 0.5 / static_cast<double>(graph.num_edges())
                       : 0.0) {}
  std::string Name() const override { return "degree"; }
  double At(NodeId i, NodeId j) const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<PreferentialAttachmentProximity>(graph_);
  }

 private:
  const Graph& graph_;
  double inv_two_m_;
};

/// PreferentialAttachmentProximity computed from a degree vector instead of
/// a resident Graph — the out-of-core pipeline's form of the "degree"
/// preference, which is the one preference whose oracle state is node-level
/// (O(|V|) degrees) rather than edge-level. Name() and the At() arithmetic
/// match PreferentialAttachmentProximity exactly (same products, same
/// 1/2|E| factor), so proximities, cache keys, and training digests are
/// bit-identical between the two providers.
class DegreeVectorProximity : public ProximityProvider {
 public:
  DegreeVectorProximity(std::vector<double> degrees, size_t num_edges)
      : degrees_(std::make_shared<const std::vector<double>>(
            std::move(degrees))),
        inv_two_m_(num_edges > 0 ? 0.5 / static_cast<double>(num_edges)
                                 : 0.0) {}

  std::string Name() const override { return "degree"; }
  double At(NodeId i, NodeId j) const override {
    return (*degrees_)[i] * (*degrees_)[j] * inv_two_m_;
  }
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::unique_ptr<ProximityProvider>(new DegreeVectorProximity(*this));
  }

 private:
  DegreeVectorProximity(const DegreeVectorProximity&) = default;

  std::shared_ptr<const std::vector<double>> degrees_;  // shared by clones
  double inv_two_m_;
};

/// Σ_{w ∈ N(i) ∩ N(j)} 1 / log(d_w)  (Adamic–Adar [19]).
class AdamicAdarProximity : public ProximityProvider {
 public:
  explicit AdamicAdarProximity(const Graph& graph) : graph_(graph) {}
  std::string Name() const override { return "adamic_adar"; }
  double At(NodeId i, NodeId j) const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<AdamicAdarProximity>(graph_);
  }

 private:
  const Graph& graph_;
};

/// Σ_{w ∈ N(i) ∩ N(j)} 1 / d_w  (resource allocation [19]).
class ResourceAllocationProximity : public ProximityProvider {
 public:
  explicit ResourceAllocationProximity(const Graph& graph) : graph_(graph) {}
  std::string Name() const override { return "resource_allocation"; }
  double At(NodeId i, NodeId j) const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<ResourceAllocationProximity>(graph_);
  }

 private:
  const Graph& graph_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_PROXIMITY_LOCAL_PROXIMITY_H_
