// High-order proximity providers: Katz, personalized PageRank, and the
// DeepWalk walk-matrix proximity (exact and Monte-Carlo sampled).
//
// All three are "row oracles": the full dense proximity row of a source node
// is computed with sparse push operations over the CSR graph and cached, so
// querying pairs grouped by source (the edge-list order used by
// ComputeEdgeProximities) costs one row computation per distinct source.

#ifndef SEPRIVGEMB_PROXIMITY_WALK_PROXIMITY_H_
#define SEPRIVGEMB_PROXIMITY_WALK_PROXIMITY_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "proximity/proximity.h"
#include "util/rng.h"

namespace sepriv {

/// Shared row-cache plumbing. Subclasses fill `row_` for a source node.
class RowCachedProximity : public ProximityProvider {
 public:
  explicit RowCachedProximity(const Graph& graph);
  double At(NodeId i, NodeId j) const override;

 protected:
  /// Fills row_[*] with the proximity row of `source`. row_ is zeroed on
  /// entry; implementations must record touched indices via Touch().
  virtual void ComputeRow(NodeId source) const = 0;

  void Touch(NodeId j) const { touched_.push_back(j); }

  const Graph& graph_;
  mutable std::vector<double> row_;

 private:
  void ClearRow() const;

  mutable std::vector<NodeId> touched_;
  mutable NodeId cached_source_ = 0;
  mutable bool has_cache_ = false;
};

/// Truncated Katz index: Σ_{l=1..L} β^l (A^l)_ij  [20].
class KatzProximity : public RowCachedProximity {
 public:
  KatzProximity(const Graph& graph, int max_length, double beta);
  std::string Name() const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<KatzProximity>(graph_, max_length_, beta_);
  }

 protected:
  void ComputeRow(NodeId source) const override;

 private:
  int max_length_;
  double beta_;
};

/// Personalized PageRank from the source node, `iterations` power steps with
/// restart probability alpha [21].
class PersonalizedPageRankProximity : public RowCachedProximity {
 public:
  PersonalizedPageRankProximity(const Graph& graph, double alpha,
                                int iterations);
  std::string Name() const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<PersonalizedPageRankProximity>(graph_, alpha_,
                                                           iterations_);
  }

 protected:
  void ComputeRow(NodeId source) const override;

 private:
  double alpha_;
  int iterations_;
};

/// Exact DeepWalk proximity [22]: M = (1/T) Σ_{w=1..T} (D^{-1}A)^w, i.e. the
/// average visiting distribution of a T-step random walk. M_ij > 0 for every
/// edge (i,j) since (D^{-1}A)_ij = 1/d_i.
class DeepWalkProximity : public RowCachedProximity {
 public:
  DeepWalkProximity(const Graph& graph, int window);
  std::string Name() const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<DeepWalkProximity>(graph_, window_);
  }

 protected:
  void ComputeRow(NodeId source) const override;

 private:
  int window_;
};

/// Monte-Carlo estimate of DeepWalkProximity: R walks of length T from the
/// source; p̂_ij = visits(j) / (R·T). Unbiased; variance O(1/R). Used for
/// graphs where even row-exact computation is too slow.
class SampledDeepWalkProximity : public RowCachedProximity {
 public:
  SampledDeepWalkProximity(const Graph& graph, int window, int walks_per_node,
                           uint64_t seed);
  std::string Name() const override;
  std::unique_ptr<ProximityProvider> Clone() const override {
    return std::make_unique<SampledDeepWalkProximity>(graph_, window_,
                                                      walks_per_node_, seed_);
  }

 protected:
  void ComputeRow(NodeId source) const override;

 private:
  int window_;
  int walks_per_node_;
  uint64_t seed_;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_PROXIMITY_WALK_PROXIMITY_H_
