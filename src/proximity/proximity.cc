#include "proximity/proximity.h"

#include <algorithm>
#include <limits>

#include "proximity/local_proximity.h"
#include "proximity/walk_proximity.h"
#include "util/check.h"

namespace sepriv {

void ProximityFinalizer::Accumulate(double p) {
  SEPRIV_CHECK(!sealed_, "ProximityFinalizer::Accumulate after Seal");
  if (count_ == 0) min_pos_ = std::numeric_limits<double>::infinity();
  ++count_;
  if (p > 0.0) {
    min_pos_ = std::min(min_pos_, p);
  } else {
    has_nonpositive_ = true;
  }
  max_val_ = std::max(max_val_, p);
}

void ProximityFinalizer::Seal() {
  SEPRIV_CHECK(!sealed_, "ProximityFinalizer sealed twice");
  sealed_ = true;
  if (count_ == 0) return;  // empty table: all-zero summary, like the legacy path
  // Floor zero proximities (possible for sampled estimators) at half the
  // smallest positive value so no edge is silently dropped from the loss.
  double min_pos = min_pos_;
  if (!std::isfinite(min_pos)) min_pos = 1.0;  // fully degenerate provider
  floor_ = 0.5 * min_pos;
  min_positive_ = has_nonpositive_ ? floor_ : min_pos;
  max_value_ = std::max(max_val_, min_positive_);
  inv_max_ = 1.0 / max_value_;
  normalized_min_positive_ = min_positive_ * inv_max_;
}

EdgeProximity FinalizeEdgeProximities(const std::vector<double>& forward,
                                      const std::vector<double>& backward) {
  SEPRIV_CHECK(forward.size() == backward.size(),
               "forward/backward pass size mismatch: %zu vs %zu",
               forward.size(), backward.size());
  EdgeProximity out;
  if (forward.empty()) return out;

  ProximityFinalizer fin;
  for (size_t e = 0; e < forward.size(); ++e)
    fin.Accumulate(0.5 * (forward[e] + backward[e]));
  fin.Seal();

  out.values.resize(forward.size());
  out.normalized.resize(forward.size());
  for (size_t e = 0; e < forward.size(); ++e) {
    const double p = 0.5 * (forward[e] + backward[e]);
    out.values[e] = fin.Value(p);
    out.normalized[e] = fin.Normalized(p);
  }
  out.min_positive = fin.min_positive();
  out.max_value = fin.max_value();
  out.normalized_min_positive = fin.normalized_min_positive();
  return out;
}

EdgeProximity ComputeEdgeProximities(const Graph& graph,
                                     const ProximityProvider& provider) {
  const auto& edges = graph.Edges();

  // Pass 1: forward direction grouped by u (row-cache friendly).
  std::vector<double> forward(edges.size()), backward(edges.size());
  for (size_t e = 0; e < edges.size(); ++e)
    forward[e] = provider.At(edges[e].u, edges[e].v);
  // Pass 2: reverse direction grouped by v. Canonical edges are sorted by u,
  // so group by v via an index sort to keep the row cache warm.
  std::vector<size_t> by_v(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) by_v[e] = e;
  std::sort(by_v.begin(), by_v.end(), [&edges](size_t a, size_t b) {
    return edges[a].v != edges[b].v ? edges[a].v < edges[b].v
                                    : edges[a].u < edges[b].u;
  });
  for (size_t idx : by_v)
    backward[idx] = provider.At(edges[idx].v, edges[idx].u);

  return FinalizeEdgeProximities(forward, backward);
}

std::unique_ptr<ProximityProvider> MakeProximity(ProximityKind kind,
                                                 const Graph& graph,
                                                 const ProximityOptions& opts) {
  switch (kind) {
    case ProximityKind::kCommonNeighbors:
      return std::make_unique<CommonNeighborsProximity>(graph);
    case ProximityKind::kJaccard:
      return std::make_unique<JaccardProximity>(graph);
    case ProximityKind::kPreferentialAttachment:
      return std::make_unique<PreferentialAttachmentProximity>(graph);
    case ProximityKind::kAdamicAdar:
      return std::make_unique<AdamicAdarProximity>(graph);
    case ProximityKind::kResourceAllocation:
      return std::make_unique<ResourceAllocationProximity>(graph);
    case ProximityKind::kKatz:
      return std::make_unique<KatzProximity>(graph, opts.katz_max_length,
                                             opts.katz_beta);
    case ProximityKind::kPersonalizedPageRank:
      return std::make_unique<PersonalizedPageRankProximity>(
          graph, opts.ppr_alpha, opts.ppr_iterations);
    case ProximityKind::kDeepWalk:
      return std::make_unique<DeepWalkProximity>(graph, opts.dw_window);
    case ProximityKind::kDeepWalkSampled:
      return std::make_unique<SampledDeepWalkProximity>(
          graph, opts.dw_window, opts.dw_walks_per_node, opts.seed);
  }
  SEPRIV_CHECK(false, "unknown proximity kind");
  return nullptr;
}

std::string ProximityKindName(ProximityKind kind) {
  switch (kind) {
    case ProximityKind::kCommonNeighbors: return "common_neighbors";
    case ProximityKind::kJaccard: return "jaccard";
    case ProximityKind::kPreferentialAttachment: return "degree";
    case ProximityKind::kAdamicAdar: return "adamic_adar";
    case ProximityKind::kResourceAllocation: return "resource_allocation";
    case ProximityKind::kKatz: return "katz";
    case ProximityKind::kPersonalizedPageRank: return "ppr";
    case ProximityKind::kDeepWalk: return "deepwalk";
    case ProximityKind::kDeepWalkSampled: return "deepwalk_sampled";
  }
  return "unknown";
}

const std::vector<ProximityKind>& AllProximityKinds() {
  static const std::vector<ProximityKind> kKinds = {
      ProximityKind::kCommonNeighbors,
      ProximityKind::kJaccard,
      ProximityKind::kPreferentialAttachment,
      ProximityKind::kAdamicAdar,
      ProximityKind::kResourceAllocation,
      ProximityKind::kKatz,
      ProximityKind::kPersonalizedPageRank,
      ProximityKind::kDeepWalk,
      ProximityKind::kDeepWalkSampled,
  };
  return kKinds;
}

}  // namespace sepriv
