// Node-proximity interface (paper §II-D, Definition 4).
//
// A proximity provider quantifies the structural closeness p_ij of a node
// pair. SE-PrivGEmb consumes proximities in two places: per-edge weights
// p_ij of the structure-preference objective (Eq. 5) and the global constant
// min(P) of the unified negative-sampling design (Theorem 3). Providers range
// from first-order (common neighbours, preferential attachment) through
// second-order (Adamic–Adar, resource allocation) to high-order (Katz,
// personalized PageRank, DeepWalk walk-matrix proximity).

#ifndef SEPRIVGEMB_PROXIMITY_PROXIMITY_H_
#define SEPRIVGEMB_PROXIMITY_PROXIMITY_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/privacy_annotations.h"

namespace sepriv {

enum class ProximityKind {
  kCommonNeighbors,     // first-order: |N(i) ∩ N(j)|
  kJaccard,             // first-order: |∩| / |∪|
  kPreferentialAttachment,  // first-order: d_i d_j / 2|E| ("Deg" variant)
  kAdamicAdar,          // second-order: Σ 1/log d_w over common neighbours
  kResourceAllocation,  // second-order: Σ 1/d_w
  kKatz,                // high-order: Σ_l β^l (A^l)_ij, truncated
  kPersonalizedPageRank,  // high-order: PPR_i(j), power iteration
  kDeepWalk,            // high-order: (1/T) Σ_{w≤T} (D^{-1}A)^w, exact rows
  kDeepWalkSampled,     // Monte-Carlo estimate of kDeepWalk via random walks
};

/// Tuning knobs for the high-order providers.
struct ProximityOptions {
  int katz_max_length = 4;      // truncation L of the Katz series
  double katz_beta = 0.05;      // attenuation; must satisfy β·λ_max < 1
  double ppr_alpha = 0.15;      // restart probability
  int ppr_iterations = 20;      // power-iteration steps
  int dw_window = 2;            // T of the DeepWalk walk matrix
  int dw_walks_per_node = 40;   // sampled variant only
  int dw_walk_length = 6;       // sampled variant only
  uint64_t seed = 7;            // sampled variant only
};

/// Read-only proximity oracle over a fixed graph. Implementations may cache
/// the most recent source row, so At() is cheap when queried grouped by i
/// (the edge-list iteration order). A single instance is not thread-safe;
/// parallel callers give each worker its own Clone().
class ProximityProvider {
 public:
  virtual ~ProximityProvider() = default;

  /// Human-readable name, e.g. "deepwalk(T=2)". Must encode every parameter
  /// that changes At() (it keys the persistent proximity cache together with
  /// the graph fingerprint and ProximityOptions).
  virtual std::string Name() const = 0;

  /// Proximity of the (ordered) pair (i, j). Symmetrised by the caller when
  /// needed: high-order walk proximities are directional.
  ///
  /// At() must be a pure function of (i, j) and construction parameters —
  /// independent of query order and of any mutable caching — so that clones
  /// sharded across threads reproduce the serial output bit for bit.
  SEPRIV_SENSITIVE_SOURCE
  virtual double At(NodeId i, NodeId j) const = 0;

  /// Fresh provider over the same graph with identical parameters and an
  /// empty row cache. Each worker of ParallelEdgeProximities owns a private
  /// clone, so the (mutable, non-thread-safe) row caches never race.
  virtual std::unique_ptr<ProximityProvider> Clone() const = 0;

  /// Symmetric proximity (At(i,j) + At(j,i)) / 2.
  double Symmetric(NodeId i, NodeId j) const {
    return 0.5 * (At(i, j) + At(j, i));
  }
};

/// Per-edge proximity table, aligned with Graph::Edges(); the trainer's view
/// of a structure preference. Sensitive: per-edge proximities are a direct
/// function of the adjacency structure.
struct SEPRIV_SENSITIVE_SOURCE EdgeProximity {
  std::vector<double> values;  // symmetric p_ij per canonical edge
  double min_positive = 0.0;   // min(P) over positive edge proximities
  double max_value = 0.0;

  /// values scaled so max == 1 (Theorem 3's solution is scale-invariant:
  /// x_ij = log(p_ij / (k·minP)) does not change under p -> c·p).
  std::vector<double> normalized;
  double normalized_min_positive = 0.0;
};

/// Evaluates the provider on every canonical edge. Edges whose proximity is
/// zero (possible for sampled estimators) are floored at half the smallest
/// positive value so the preference weight never silently disables an edge.
EdgeProximity ComputeEdgeProximities(const Graph& graph,
                                     const ProximityProvider& provider);

/// Streaming form of the finalisation arithmetic: Accumulate every symmetric
/// edge proximity (pass 1), Seal, then map each value through Value() /
/// Normalized() (pass 2). FinalizeEdgeProximities is implemented on top of
/// this class, and the sharded/out-of-core proximity passes — which never
/// hold the full edge table in memory — stream through it directly, so the
/// two pipelines floor, clamp, and scale with bit-identical arithmetic.
class ProximityFinalizer {
 public:
  /// Pass 1: feed the symmetric proximity of every edge, in any order.
  void Accumulate(double p);

  /// Freezes the floor and scale. Accumulate must not be called afterwards.
  void Seal();

  /// Pass 2 (after Seal): the floored edge value, exactly as stored in
  /// EdgeProximity::values.
  double Value(double p) const { return p <= 0.0 ? floor_ : p; }

  /// Pass 2 (after Seal): the max-scaled value (EdgeProximity::normalized).
  double Normalized(double p) const { return Value(p) * inv_max_; }

  size_t count() const { return count_; }
  double min_positive() const { return min_positive_; }
  double max_value() const { return max_value_; }
  double normalized_min_positive() const { return normalized_min_positive_; }

 private:
  size_t count_ = 0;
  bool has_nonpositive_ = false;
  bool sealed_ = false;
  double min_pos_ = 0.0;  // running min over positive inputs (inf-init)
  double max_val_ = 0.0;
  double floor_ = 0.0;
  double min_positive_ = 0.0;
  double max_value_ = 0.0;
  double inv_max_ = 1.0;
  double normalized_min_positive_ = 0.0;
};

/// Shared tail of ComputeEdgeProximities and ParallelEdgeProximities:
/// symmetrises the per-edge forward/backward passes, floors zero values,
/// records min/max, and normalises. Kept common so the serial and parallel
/// engines are bit-identical by construction.
EdgeProximity FinalizeEdgeProximities(const std::vector<double>& forward,
                                      const std::vector<double>& backward);

/// Factory. Aborts on unsupported combinations (e.g. exact high-order
/// providers on graphs beyond their documented size limits).
std::unique_ptr<ProximityProvider> MakeProximity(
    ProximityKind kind, const Graph& graph, const ProximityOptions& opts = {});

/// Short stable name, e.g. "katz".
std::string ProximityKindName(ProximityKind kind);

/// All kinds (for parameterized tests and ablation benches).
const std::vector<ProximityKind>& AllProximityKinds();

}  // namespace sepriv

#endif  // SEPRIVGEMB_PROXIMITY_PROXIMITY_H_
