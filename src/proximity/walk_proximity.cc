#include "proximity/walk_proximity.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace sepriv {

RowCachedProximity::RowCachedProximity(const Graph& graph)
    : graph_(graph), row_(graph.num_nodes(), 0.0) {
  touched_.reserve(1024);
}

double RowCachedProximity::At(NodeId i, NodeId j) const {
  SEPRIV_CHECK(i < graph_.num_nodes() && j < graph_.num_nodes(),
               "node out of range: (%u,%u) vs |V|=%zu", i, j,
               graph_.num_nodes());
  if (!has_cache_ || cached_source_ != i) {
    ClearRow();
    ComputeRow(i);
    cached_source_ = i;
    has_cache_ = true;
  }
  return row_[j];
}

void RowCachedProximity::ClearRow() const {
  // Sparse clear: only reset what the previous row touched.
  if (touched_.size() > row_.size() / 4) {
    std::fill(row_.begin(), row_.end(), 0.0);
  } else {
    for (NodeId j : touched_) row_[j] = 0.0;
  }
  touched_.clear();
}

// --- Katz -------------------------------------------------------------------

KatzProximity::KatzProximity(const Graph& graph, int max_length, double beta)
    : RowCachedProximity(graph), max_length_(max_length), beta_(beta) {
  SEPRIV_CHECK(max_length_ >= 1, "Katz needs max_length >= 1");
  SEPRIV_CHECK(beta_ > 0.0, "Katz needs beta > 0");
}

std::string KatzProximity::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "katz(L=%d,beta=%.3f)", max_length_, beta_);
  return buf;
}

void KatzProximity::ComputeRow(NodeId source) const {
  const size_t n = graph_.num_nodes();
  // cur holds (A^l)_source as a sparse vector over a dense scratch.
  std::vector<double> cur(n, 0.0), next(n, 0.0);
  std::vector<NodeId> cur_nz, next_nz;
  cur[source] = 1.0;
  cur_nz.push_back(source);
  double beta_pow = 1.0;
  for (int l = 1; l <= max_length_; ++l) {
    beta_pow *= beta_;
    for (NodeId k : cur_nz) {
      const double mass = cur[k];
      for (NodeId u : graph_.Neighbors(k)) {
        if (next[u] == 0.0) next_nz.push_back(u);
        next[u] += mass;
      }
      cur[k] = 0.0;
    }
    for (NodeId u : next_nz) {
      if (row_[u] == 0.0) Touch(u);
      row_[u] += beta_pow * next[u];
    }
    cur_nz.swap(next_nz);
    cur.swap(next);
    next_nz.clear();
  }
}

// --- Personalized PageRank ---------------------------------------------------

PersonalizedPageRankProximity::PersonalizedPageRankProximity(const Graph& graph,
                                                             double alpha,
                                                             int iterations)
    : RowCachedProximity(graph), alpha_(alpha), iterations_(iterations) {
  SEPRIV_CHECK(alpha_ > 0.0 && alpha_ < 1.0, "PPR alpha must be in (0,1)");
  SEPRIV_CHECK(iterations_ >= 1, "PPR needs iterations >= 1");
}

std::string PersonalizedPageRankProximity::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ppr(alpha=%.2f,iters=%d)", alpha_,
                iterations_);
  return buf;
}

void PersonalizedPageRankProximity::ComputeRow(NodeId source) const {
  const size_t n = graph_.num_nodes();
  std::vector<double> r(n, 0.0), next(n, 0.0);
  std::vector<NodeId> r_nz, next_nz;
  r[source] = 1.0;
  r_nz.push_back(source);
  for (int it = 0; it < iterations_; ++it) {
    for (NodeId k : r_nz) {
      const size_t deg = graph_.Degree(k);
      if (deg == 0) {
        r[k] = 0.0;
        continue;
      }
      const double push = (1.0 - alpha_) * r[k] / static_cast<double>(deg);
      for (NodeId u : graph_.Neighbors(k)) {
        if (next[u] == 0.0) next_nz.push_back(u);
        next[u] += push;
      }
      r[k] = 0.0;
    }
    if (next[source] == 0.0) next_nz.push_back(source);
    next[source] += alpha_;
    r.swap(next);
    r_nz.swap(next_nz);
    next_nz.clear();
  }
  for (NodeId u : r_nz) {
    if (r[u] != 0.0) {
      row_[u] = r[u];
      Touch(u);
    }
  }
}

// --- DeepWalk (exact) --------------------------------------------------------

DeepWalkProximity::DeepWalkProximity(const Graph& graph, int window)
    : RowCachedProximity(graph), window_(window) {
  SEPRIV_CHECK(window_ >= 1, "DeepWalk proximity needs window >= 1");
}

std::string DeepWalkProximity::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "deepwalk(T=%d)", window_);
  return buf;
}

void DeepWalkProximity::ComputeRow(NodeId source) const {
  const size_t n = graph_.num_nodes();
  std::vector<double> cur(n, 0.0), next(n, 0.0);
  std::vector<NodeId> cur_nz, next_nz;
  cur[source] = 1.0;
  cur_nz.push_back(source);
  const double inv_t = 1.0 / static_cast<double>(window_);
  for (int w = 1; w <= window_; ++w) {
    for (NodeId k : cur_nz) {
      const size_t deg = graph_.Degree(k);
      if (deg == 0) {
        cur[k] = 0.0;
        continue;
      }
      const double push = cur[k] / static_cast<double>(deg);
      for (NodeId u : graph_.Neighbors(k)) {
        if (next[u] == 0.0) next_nz.push_back(u);
        next[u] += push;
      }
      cur[k] = 0.0;
    }
    for (NodeId u : next_nz) {
      if (row_[u] == 0.0) Touch(u);
      row_[u] += inv_t * next[u];
    }
    cur.swap(next);
    cur_nz.swap(next_nz);
    next_nz.clear();
  }
}

// --- DeepWalk (sampled) ------------------------------------------------------

SampledDeepWalkProximity::SampledDeepWalkProximity(const Graph& graph,
                                                   int window,
                                                   int walks_per_node,
                                                   uint64_t seed)
    : RowCachedProximity(graph),
      window_(window),
      walks_per_node_(walks_per_node),
      seed_(seed) {
  SEPRIV_CHECK(window_ >= 1, "sampled DeepWalk needs window >= 1");
  SEPRIV_CHECK(walks_per_node_ >= 1, "sampled DeepWalk needs walks >= 1");
}

std::string SampledDeepWalkProximity::Name() const {
  // The seed changes At() (it keys the walk substreams), so it must appear
  // in the name: Name() is part of the persistent-cache key, and two
  // directly constructed providers differing only in seed may not alias.
  char buf[96];
  std::snprintf(buf, sizeof(buf), "deepwalk_sampled(T=%d,R=%d,seed=%llu)",
                window_, walks_per_node_,
                static_cast<unsigned long long>(seed_));
  return buf;
}

void SampledDeepWalkProximity::ComputeRow(NodeId source) const {
  // Estimator: p̂_ij = (# visits of j at steps 1..T over R walks) / (R·T);
  // unbiased for (1/T) Σ_w (D^{-1}A)^w _ij.
  const double unit = 1.0 / (static_cast<double>(walks_per_node_) *
                             static_cast<double>(window_));
  // Keyed per-source substream (Rng::Fork(stream) discipline): the walk
  // stream depends only on (seed, source), never on query order or on which
  // worker computes the row, so At(i,j) is repeatable across calls AND the
  // parallel engine's sharded clones reproduce the serial output bit for bit.
  uint64_t row_seed = seed_ ^ (static_cast<uint64_t>(source) + 1) * 0x9e3779b97f4a7c15ULL;
  Rng rng(SplitMix64(row_seed));
  for (int r = 0; r < walks_per_node_; ++r) {
    NodeId cur = source;
    for (int step = 0; step < window_; ++step) {
      const auto nbrs = graph_.Neighbors(cur);
      if (nbrs.empty()) break;
      cur = nbrs[rng.UniformInt(nbrs.size())];
      if (row_[cur] == 0.0) Touch(cur);
      row_[cur] += unit;
    }
  }
}

}  // namespace sepriv
