// Gaussian mechanism (paper §II-B): A(G) = f(G) + N(0, S_f²σ²I), which
// satisfies (α, α/(2σ²))-RDP for every α > 1 [Mironov'17, Cor. 3].

#ifndef SEPRIVGEMB_DP_GAUSSIAN_MECHANISM_H_
#define SEPRIVGEMB_DP_GAUSSIAN_MECHANISM_H_

#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace sepriv {

/// Adds i.i.d. N(0, stddev²) noise to every element of `values`.
void AddGaussianNoise(std::span<double> values, double stddev, Rng& rng);

/// Adds i.i.d. N(0, stddev²) noise to the listed rows of `m` only — the
/// non-zero perturbation Ñ(·) of paper Eq. (9). Rows may repeat; repeated
/// entries receive a single noise draw (callers pass de-duplicated lists).
void AddGaussianNoiseToRows(Matrix& m, std::span<const uint32_t> rows,
                            double stddev, Rng& rng);

/// Adds i.i.d. N(0, stddev²) noise to every row of `m` — the naive
/// perturbation of paper Eq. (6).
void AddGaussianNoiseToAllRows(Matrix& m, double stddev, Rng& rng);

/// Value-semantics description of a Gaussian mechanism invocation.
struct GaussianMechanism {
  double sensitivity = 1.0;       // S_f
  double noise_multiplier = 1.0;  // σ

  /// Standard deviation of the injected noise: S_f · σ.
  double Stddev() const { return sensitivity * noise_multiplier; }

  /// RDP at order alpha: α S_f² / (2 (S_f σ)²) = α / (2σ²).
  double Rdp(double alpha) const {
    return alpha / (2.0 * noise_multiplier * noise_multiplier);
  }
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_GAUSSIAN_MECHANISM_H_
