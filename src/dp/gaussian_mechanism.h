// Gaussian mechanism (paper §II-B): A(G) = f(G) + N(0, S_f²σ²I), which
// satisfies (α, α/(2σ²))-RDP for every α > 1 [Mironov'17, Cor. 3].

#ifndef SEPRIVGEMB_DP_GAUSSIAN_MECHANISM_H_
#define SEPRIVGEMB_DP_GAUSSIAN_MECHANISM_H_

#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"
#include "util/privacy_annotations.h"
#include "util/rng.h"

namespace sepriv {

/// Adds i.i.d. N(0, stddev²) noise to every element of `values`.
SEPRIV_DP_SANITIZER
void AddGaussianNoise(std::span<double> values, double stddev, Rng& rng);

/// Adds i.i.d. N(0, stddev²) noise to the listed rows of `m` only — the
/// non-zero perturbation Ñ(·) of paper Eq. (9). Rows may repeat; repeated
/// entries receive a single noise draw (callers pass de-duplicated lists).
/// Marks `m` dp-sanitized when stddev > 0.
SEPRIV_DP_SANITIZER
void AddGaussianNoiseToRows(Matrix& m, std::span<const uint32_t> rows,
                            double stddev, Rng& rng);

/// Adds i.i.d. N(0, stddev²) noise to every row of `m` — the naive
/// perturbation of paper Eq. (6). Marks `m` dp-sanitized when stddev > 0.
SEPRIV_DP_SANITIZER
void AddGaussianNoiseToAllRows(Matrix& m, double stddev, Rng& rng);

/// Value-semantics description of a Gaussian mechanism invocation.
/// Non-positive sensitivity or noise multiplier is a programmer error:
/// either one silently zeroes the injected noise while the accountant keeps
/// reporting a finite ε, i.e. a privacy claim with no mechanism behind it.
struct GaussianMechanism {
  double sensitivity = 1.0;       // S_f
  double noise_multiplier = 1.0;  // σ

  /// Standard deviation of the injected noise: S_f · σ.
  double Stddev() const {
    SEPRIV_CHECK(sensitivity > 0.0,
                 "sensitivity must be positive (got %g): S_f <= 0 means no "
                 "noise while the accountant still reports finite epsilon",
                 sensitivity);
    SEPRIV_CHECK(noise_multiplier > 0.0,
                 "noise multiplier must be positive (got %g)",
                 noise_multiplier);
    return sensitivity * noise_multiplier;
  }

  /// RDP at order alpha: α S_f² / (2 (S_f σ)²) = α / (2σ²).
  double Rdp(double alpha) const {
    SEPRIV_CHECK(noise_multiplier > 0.0,
                 "noise multiplier must be positive (got %g)",
                 noise_multiplier);
    return alpha / (2.0 * noise_multiplier * noise_multiplier);
  }
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_GAUSSIAN_MECHANISM_H_
