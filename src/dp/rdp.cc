#include "dp/rdp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace sepriv {

double GaussianRdp(double noise_multiplier, double alpha) {
  SEPRIV_CHECK(noise_multiplier > 0.0, "noise multiplier must be positive");
  SEPRIV_CHECK(alpha > 1.0, "RDP order must exceed 1 (got %f)", alpha);
  return alpha / (2.0 * noise_multiplier * noise_multiplier);
}

DpBound RdpToDp(const std::vector<double>& orders,
                const std::vector<double>& rdp, double delta) {
  SEPRIV_CHECK(orders.size() == rdp.size(), "orders/rdp size mismatch");
  SEPRIV_CHECK(!orders.empty(), "empty RDP curve");
  SEPRIV_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  DpBound best{std::numeric_limits<double>::infinity(), orders[0]};
  const double log_inv_delta = std::log(1.0 / delta);
  for (size_t i = 0; i < orders.size(); ++i) {
    SEPRIV_CHECK(orders[i] > 1.0, "RDP order must exceed 1");
    const double eps = rdp[i] + log_inv_delta / (orders[i] - 1.0);
    if (eps < best.epsilon) {
      best.epsilon = eps;
      best.best_order = orders[i];
    }
  }
  best.epsilon = std::max(0.0, best.epsilon);
  return best;
}

double RdpToDelta(const std::vector<double>& orders,
                  const std::vector<double>& rdp, double epsilon) {
  SEPRIV_CHECK(orders.size() == rdp.size(), "orders/rdp size mismatch");
  SEPRIV_CHECK(!orders.empty(), "empty RDP curve");
  SEPRIV_CHECK(epsilon >= 0.0, "epsilon must be non-negative");
  double best_log_delta = 0.0;  // δ <= 1 always holds
  for (size_t i = 0; i < orders.size(); ++i) {
    const double log_delta = (orders[i] - 1.0) * (rdp[i] - epsilon);
    best_log_delta = std::min(best_log_delta, log_delta);
  }
  return std::exp(best_log_delta);
}

}  // namespace sepriv
