#include "dp/calibration.h"

#include "dp/accountant.h"
#include "util/check.h"

namespace sepriv {
namespace {

double EpsilonFor(double sigma, double delta, size_t num_queries,
                  double sampling_rate, int max_order) {
  RdpAccountant acct(sigma, sampling_rate, max_order);
  acct.Step(num_queries);
  return acct.GetEpsilon(delta).epsilon;
}

}  // namespace

double CalibrateNoiseMultiplier(double epsilon, double delta,
                                size_t num_queries, double sampling_rate,
                                int max_order, double sigma_lo,
                                double sigma_hi) {
  SEPRIV_CHECK(epsilon > 0.0, "epsilon must be positive");
  SEPRIV_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0, 1), got %g",
               delta);
  SEPRIV_CHECK(num_queries > 0, "need at least one query");
  SEPRIV_CHECK(sampling_rate > 0.0 && sampling_rate <= 1.0,
               "sampling rate must be in (0, 1], got %g", sampling_rate);
  SEPRIV_CHECK(sigma_lo > 0.0 && sigma_hi >= sigma_lo,
               "need 0 < sigma_lo <= sigma_hi (got [%g, %g]): a non-positive "
               "noise multiplier would silently disable the mechanism",
               sigma_lo, sigma_hi);
  if (EpsilonFor(sigma_hi, delta, num_queries, sampling_rate, max_order) >
      epsilon) {
    return sigma_hi;  // cannot meet the budget within the search range
  }
  if (EpsilonFor(sigma_lo, delta, num_queries, sampling_rate, max_order) <=
      epsilon) {
    return sigma_lo;  // already private enough at the lower bound
  }
  double lo = sigma_lo, hi = sigma_hi;
  for (int it = 0; it < 64; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (EpsilonFor(mid, delta, num_queries, sampling_rate, max_order) >
        epsilon) {
      lo = mid;  // too little noise
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace sepriv
