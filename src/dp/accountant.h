// RDP privacy accountant for the subsampled Gaussian mechanism.
//
// Implements Algorithm 2 lines 8–10 of the paper: after every training epoch
// (one subsampled batch query with sampling rate γ = B/|E| and noise
// multiplier σ), composition adds the per-step subsampled RDP at each tracked
// order; GetDelta(ε_target) is the δ̂ the algorithm compares against δ to
// decide when to stop optimising.

#ifndef SEPRIVGEMB_DP_ACCOUNTANT_H_
#define SEPRIVGEMB_DP_ACCOUNTANT_H_

#include <cstddef>
#include <vector>

#include "dp/rdp.h"

namespace sepriv {

class RdpAccountant {
 public:
  /// Tracks integer orders α ∈ {2, ..., max_order}. The paper's Theorem 4
  /// bound requires integer orders.
  RdpAccountant(double noise_multiplier, double sampling_rate,
                int max_order = 64);

  /// Registers `count` additional mechanism invocations (training epochs).
  void Step(size_t count = 1) { steps_ += count; }

  void Reset() { steps_ = 0; }

  size_t steps() const { return steps_; }
  double noise_multiplier() const { return noise_multiplier_; }
  double sampling_rate() const { return sampling_rate_; }

  /// (ε, best α) after the steps so far, at failure probability δ.
  DpBound GetEpsilon(double delta) const;

  /// Smallest achievable δ̂ at a target ε after the steps so far.
  double GetDelta(double epsilon) const;

  /// Largest number of steps whose conversion stays within (ε, δ);
  /// 0 if even one step exceeds the budget. Closed form per order:
  ///   n_α = floor( (ε - log(1/δ)/(α-1)) / rdp_step(α) ), maximised over α.
  /// When some order has zero per-step RDP (a degenerate mechanism that
  /// consumes no budget), returns std::numeric_limits<size_t>::max(), the
  /// same "unlimited" sentinel TrainResult::epochs_allowed uses.
  size_t MaxSteps(double epsilon, double delta) const;

  /// Per-step RDP curve (aligned with orders()).
  const std::vector<double>& per_step_rdp() const { return per_step_rdp_; }
  const std::vector<double>& orders() const { return orders_; }

 private:
  std::vector<double> CurrentRdp() const;

  double noise_multiplier_;
  double sampling_rate_;
  std::vector<double> orders_;
  std::vector<double> per_step_rdp_;
  size_t steps_ = 0;
};

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_ACCOUNTANT_H_
