// Rényi differential privacy curves and the RDP -> (ε, δ) conversion
// (paper Definition 2 and Theorem 1 [Mironov'17, Prop. 3]).

#ifndef SEPRIVGEMB_DP_RDP_H_
#define SEPRIVGEMB_DP_RDP_H_

#include <vector>

namespace sepriv {

/// RDP of the Gaussian mechanism with noise multiplier sigma at order alpha:
/// ε(α) = α / (2σ²).
double GaussianRdp(double noise_multiplier, double alpha);

/// Result of optimising the conversion over RDP orders.
struct DpBound {
  double epsilon = 0.0;
  double best_order = 0.0;
};

/// Converts an RDP curve {(orders[i], rdp[i])} to (ε, δ)-DP:
///   ε = min_α [ rdp(α) + log(1/δ) / (α-1) ].
DpBound RdpToDp(const std::vector<double>& orders,
                const std::vector<double>& rdp, double delta);

/// Inverse direction: the smallest δ achievable at a target ε:
///   δ = min_α exp( (α-1) · (rdp(α) - ε) ), clamped to [0, 1].
double RdpToDelta(const std::vector<double>& orders,
                  const std::vector<double>& rdp, double epsilon);

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_RDP_H_
