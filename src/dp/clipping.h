// Per-sample L2 gradient clipping (paper Eq. 3):
//   Clip(g) = g / max(1, ||g||_2 / C).

#ifndef SEPRIVGEMB_DP_CLIPPING_H_
#define SEPRIVGEMB_DP_CLIPPING_H_

#include <span>

#include "util/privacy_annotations.h"

namespace sepriv {

/// Scales `grad` in place so its L2 norm is at most `threshold`. Returns the
/// applied scale factor (1.0 when no clipping occurred). Sanitizer-annotated
/// as the sensitivity-bounding half of the Gaussian mechanism: clipping
/// without a downstream accountant-charged noise step is NOT DP, which is
/// exactly what privflow's accountant-pairing rule checks at every call
/// site.
SEPRIV_DP_SANITIZER
double ClipL2InPlace(std::span<double> grad, double threshold);

/// Returns the scale factor that ClipL2InPlace would apply for a gradient of
/// the given norm.
double ClipScale(double norm, double threshold);

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_CLIPPING_H_
