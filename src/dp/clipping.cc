#include "dp/clipping.h"

#include "linalg/kernels.h"
#include "util/check.h"
#include "util/math_util.h"

namespace sepriv {

double ClipScale(double norm, double threshold) {
  SEPRIV_CHECK(threshold > 0.0, "clip threshold must be positive (got %f)",
               threshold);
  if (norm <= threshold) return 1.0;
  return threshold / norm;
}

double ClipL2InPlace(std::span<double> grad, double threshold) {
  const double norm = Norm(grad.data(), grad.size());
  const double scale = ClipScale(norm, threshold);
  if (scale != 1.0) {
    kernels::Scale(scale, grad.data(), grad.size());
  }
  return scale;
}

}  // namespace sepriv
