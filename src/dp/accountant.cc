#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/subsampled_rdp.h"
#include "util/check.h"

namespace sepriv {

RdpAccountant::RdpAccountant(double noise_multiplier, double sampling_rate,
                             int max_order)
    : noise_multiplier_(noise_multiplier), sampling_rate_(sampling_rate) {
  SEPRIV_CHECK(max_order >= 2, "max_order must be >= 2 (got %d)", max_order);
  orders_.reserve(static_cast<size_t>(max_order) - 1);
  per_step_rdp_.reserve(static_cast<size_t>(max_order) - 1);
  for (int a = 2; a <= max_order; ++a) {
    orders_.push_back(static_cast<double>(a));
    per_step_rdp_.push_back(
        SubsampledGaussianRdp(sampling_rate, noise_multiplier, a));
  }
}

std::vector<double> RdpAccountant::CurrentRdp() const {
  std::vector<double> rdp(per_step_rdp_.size());
  for (size_t i = 0; i < rdp.size(); ++i)
    rdp[i] = per_step_rdp_[i] * static_cast<double>(steps_);
  return rdp;
}

DpBound RdpAccountant::GetEpsilon(double delta) const {
  // Zero queries reveal nothing: the conversion tax log(1/δ)/(α-1) only
  // applies once the mechanism has actually touched the data.
  if (steps_ == 0) return {0.0, orders_.back()};
  return RdpToDp(orders_, CurrentRdp(), delta);
}

double RdpAccountant::GetDelta(double epsilon) const {
  if (steps_ == 0) return 0.0;
  return RdpToDelta(orders_, CurrentRdp(), epsilon);
}

size_t RdpAccountant::MaxSteps(double epsilon, double delta) const {
  SEPRIV_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  const double log_inv_delta = std::log(1.0 / delta);
  size_t best = 0;
  for (size_t i = 0; i < orders_.size(); ++i) {
    const double slack = epsilon - log_inv_delta / (orders_[i] - 1.0);
    if (slack <= 0.0) continue;
    if (per_step_rdp_[i] <= 0.0) {
      // Degenerate (zero per-step RDP ⇒ unbounded steps). Use the same
      // "unlimited" sentinel as TrainResult::epochs_allowed.
      return std::numeric_limits<size_t>::max();
    }
    const double n = std::floor(slack / per_step_rdp_[i]);
    // Tiny-positive RDP can push n past SIZE_MAX; the double→size_t cast
    // would be UB there, so clamp to the same "unlimited" sentinel.
    if (n >= static_cast<double>(std::numeric_limits<size_t>::max())) {
      return std::numeric_limits<size_t>::max();
    }
    best = std::max(best, static_cast<size_t>(n));
  }
  return best;
}

}  // namespace sepriv
