#include "dp/gaussian_mechanism.h"

#include "linalg/kernels.h"
#include "util/check.h"

namespace sepriv {

void AddGaussianNoise(std::span<double> values, double stddev, Rng& rng) {
  SEPRIV_CHECK(stddev >= 0.0, "noise stddev must be non-negative");
  if (stddev == 0.0) return;
  // Block Box–Muller fill: no cached-second-value branch per element.
  kernels::AccumulateGaussian(rng, values.data(), values.size(), stddev);
}

void AddGaussianNoiseToRows(Matrix& m, std::span<const uint32_t> rows,
                            double stddev, Rng& rng) {
  for (uint32_t r : rows) {
    SEPRIV_CHECK(r < m.rows(), "row %u out of range (%zu rows)", r, m.rows());
    AddGaussianNoise(m.Row(r), stddev, rng);
  }
  if (stddev > 0.0) m.MarkDpSanitized();
}

void AddGaussianNoiseToAllRows(Matrix& m, double stddev, Rng& rng) {
  AddGaussianNoise({m.data(), m.size()}, stddev, rng);
  if (stddev > 0.0) m.MarkDpSanitized();
}

}  // namespace sepriv
