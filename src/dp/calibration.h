// Noise calibration: the smallest noise multiplier σ such that a fixed
// number of (subsampled) Gaussian queries stays within an (ε, δ) budget.
// Used by the GAP/ProGAP baselines, which decide their per-query noise from
// the number of aggregation perturbations they will perform.

#ifndef SEPRIVGEMB_DP_CALIBRATION_H_
#define SEPRIVGEMB_DP_CALIBRATION_H_

#include <cstddef>

namespace sepriv {

/// Binary-searches σ ∈ [σ_lo, σ_hi] so that `num_queries` subsampled-Gaussian
/// invocations at `sampling_rate` convert to ε' ≤ epsilon at the given delta.
/// Returns σ_hi if even that is insufficient (callers treat the result as
/// "as private as representable").
double CalibrateNoiseMultiplier(double epsilon, double delta,
                                size_t num_queries, double sampling_rate = 1.0,
                                int max_order = 64, double sigma_lo = 0.3,
                                double sigma_hi = 5000.0);

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_CALIBRATION_H_
