#include "dp/subsampled_rdp.h"

#include <cmath>
#include <vector>

#include "dp/rdp.h"
#include "util/check.h"
#include "util/math_util.h"

namespace sepriv {

double SubsampledGaussianRdp(double sampling_rate, double noise_multiplier,
                             int alpha) {
  SEPRIV_CHECK(sampling_rate > 0.0 && sampling_rate <= 1.0,
               "sampling rate must be in (0,1], got %f", sampling_rate);
  SEPRIV_CHECK(noise_multiplier > 0.0, "noise multiplier must be positive");
  SEPRIV_CHECK(alpha >= 2, "integer order alpha >= 2 required (got %d)", alpha);

  const double gamma = sampling_rate;
  const double sigma2 = noise_multiplier * noise_multiplier;
  auto eps_of = [sigma2](int j) {
    return static_cast<double>(j) / (2.0 * sigma2);  // Gaussian RDP at order j
  };
  const double unamplified = GaussianRdp(noise_multiplier, alpha);
  if (gamma >= 1.0) return unamplified;

  const double log_gamma = std::log(gamma);

  // j = 2 term: γ² C(α,2) min{ 4(e^{ε(2)}-1), 2 e^{ε(2)} }.
  // (With ε(∞) = ∞ for the Gaussian mechanism, min{2, (e^{ε(∞)}-1)²} = 2.)
  const double eps2 = eps_of(2);
  const double min_term =
      std::min(4.0 * std::expm1(eps2), 2.0 * std::exp(eps2));
  std::vector<double> log_terms;
  log_terms.reserve(static_cast<size_t>(alpha));
  log_terms.push_back(2.0 * log_gamma + LogBinomial(alpha, 2) +
                      std::log(min_term));

  // j >= 3 terms: γ^j C(α,j) e^{(j-1) ε(j)} · 2.
  for (int j = 3; j <= alpha; ++j) {
    const double log_term = static_cast<double>(j) * log_gamma +
                            LogBinomial(alpha, j) +
                            (static_cast<double>(j) - 1.0) * eps_of(j) +
                            std::log(2.0);
    log_terms.push_back(log_term);
  }

  // ε'(α) = log(1 + Σ terms) / (α - 1), computed as LogAddExp(0, LSE(terms)).
  const double log_sum = LogAddExp(0.0, LogSumExp(log_terms));
  const double amplified = log_sum / (static_cast<double>(alpha) - 1.0);

  // Subsampling never hurts: the unamplified curve is also a valid bound.
  return std::min(amplified, unamplified);
}

}  // namespace sepriv
