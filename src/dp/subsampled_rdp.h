// RDP amplification by subsampling without replacement — paper Theorem 4,
// due to Wang, Balle & Kasiviswanathan (AISTATS'19, Thm 27).

#ifndef SEPRIVGEMB_DP_SUBSAMPLED_RDP_H_
#define SEPRIVGEMB_DP_SUBSAMPLED_RDP_H_

namespace sepriv {

/// RDP at integer order `alpha` >= 2 of the subsampled Gaussian mechanism:
/// subsample a γ-fraction without replacement, then run a Gaussian mechanism
/// with noise multiplier `noise_multiplier` on the subsample.
///
/// Implements the bound of paper Theorem 4 with the Gaussian curve
/// ε(j) = j / (2σ²) and ε(∞) = ∞ (so the min{·} terms resolve to
/// min{4(e^{ε(2)}-1), 2e^{ε(2)}} for j = 2 and 2 for j >= 3), evaluated in
/// log-space to stay finite at large α. The result is additionally capped at
/// the unamplified Gaussian RDP, which is always a valid upper bound.
double SubsampledGaussianRdp(double sampling_rate, double noise_multiplier,
                             int alpha);

}  // namespace sepriv

#endif  // SEPRIVGEMB_DP_SUBSAMPLED_RDP_H_
